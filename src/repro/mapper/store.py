"""The Mapper runtime: entities, roles, attributes and relationships.

This is the operational half of the LUC Mapper (paper §5.1): it owns the
storage files built from a :class:`~repro.mapper.physical.PhysicalDesign`,
hands out surrogates, and implements the record-level operations the
engine uses — with *structural integrity* maintained here, exactly as the
paper assigns it: "when a record of a superclass LUC is deleted, the
Mapper will automatically delete corresponding subclass records and delete
instances of all EVAs the deleted records participate in."

All mutations register undo closures with the transaction manager, so a
statement or transaction abort restores records and indexes alike.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import CatalogError, IntegrityError, UniquenessViolation
from repro.mapper.history import HistoryJournal
from repro.mapper.luc import LUCSchema
from repro.mapper.materialized import MaterializationManager
from repro.mapper.read_cache import MISSING, ReadCache
from repro.mapper.physical import EvaMapping, MvDvaMapping, PhysicalDesign
from repro.mapper.writes import ReadCacheSubscriber, WriteNotifier
from repro.mapper.translate import canonical_eva, translate_schema
from repro.mapper.versions import ABSENT, VersionManager
from repro.naming import canon
from repro.perf import PerfCounters
from repro.storage.latch import ranked_lock
from repro.schema.attribute import EntityValuedAttribute
from repro.schema.schema import Schema
from repro.storage.buffer import BufferPool, Disk
from repro.storage.faults import FaultInjector, RetryPolicy
from repro.storage.files import RecordFile
from repro.storage.index import HashIndex, make_index
from repro.storage.records import RID, RecordFormat, field_width_for_type
from repro.storage.transactions import TransactionManager
from repro.storage.wal import WriteAheadLog, undo_losers
from repro.types.tvl import NULL, is_null

_POINTER_WIDTH = 12
_SURROGATE_WIDTH = 6

#: returned by ``_staging_txn`` when pre-image staging must be skipped
#: (MVCC off, or the mutation is undo compensation during rollback)
_STAGE_SKIP = object()


def _in_range(value, low, high, include_low: bool, include_high: bool) -> bool:
    """Range-predicate semantics of the ordered-index path: NULL never
    matches; open bounds are None."""
    if is_null(value):
        return False
    if low is not None:
        if value < low or (value == low and not include_low):
            return False
    if high is not None:
        if value > high or (value == high and not include_high):
            return False
    return True


class _EvaInfo:
    """Runtime bookkeeping for one canonical EVA pair."""

    def __init__(self, canonical: EntityValuedAttribute, rel_id: int,
                 mapping: EvaMapping):
        self.canonical = canonical
        self.rel_id = rel_id
        self.mapping = mapping
        self.instance_count = 0
        # COMMON / DEDICATED / CLUSTERED:
        self.file: Optional[RecordFile] = None
        self.format_id: Optional[int] = None
        self.forward: Optional[HashIndex] = None   # surr1 -> rel-record RIDs
        self.reverse: Optional[HashIndex] = None   # surr2 -> rel-record RIDs
        # FOREIGN_KEY:
        self.fk_field: Optional[str] = None
        #: the EVA side whose owner record holds the key (the single-valued
        #: side; the canonical side for 1:1 pairs)
        self.fk_eva: Optional[EntityValuedAttribute] = None
        self.fk_reverse: Optional[HashIndex] = None  # target surr -> holder RID
        # POINTER:
        self.ptr_field: Optional[str] = None
        self.ptr_reverse: Optional[HashIndex] = None  # target surr -> owner surr

    @property
    def self_inverse(self) -> bool:
        return self.canonical.inverse is self.canonical


class MapperStore:
    """Entity-level storage over the block substrate.

    Parameters
    ----------
    schema:
        a resolved :class:`~repro.schema.schema.Schema`.
    design:
        a :class:`PhysicalDesign`; defaults to the paper's default rules.
    """

    def __init__(self, schema: Schema, design: Optional[PhysicalDesign] = None):
        if not schema.resolved:
            raise CatalogError("MapperStore needs a resolved schema")
        self.schema = schema
        self.design = design or PhysicalDesign(schema).finalize()
        self.luc_schema: LUCSchema = translate_schema(schema)
        self.disk = Disk()
        self.wal = WriteAheadLog()
        self.pool = BufferPool(self.disk, self.design.pool_capacity)
        self.pool.wal = self.wal
        self.transactions = TransactionManager(self.pool, wal=self.wal)
        #: read-path counters shared with the engine and the optimizer
        self.perf = PerfCounters()
        #: bounded retry-with-backoff for transient device faults; applied
        #: to every buffer-pool disk access, WAL force, and recovery I/O
        self.retry = RetryPolicy(perf=self.perf)
        self.pool.retry = self.retry
        self.wal.retry = self.retry
        #: optional fault injector (see install_faults)
        self.faults: Optional[FaultInjector] = None
        #: optional trace recorder (see repro.trace.attach_tracing); None
        #: by default so the hot-path guard is a single identity test
        self.trace = None
        #: decoded-record / role / EVA fan-out caches (see read_cache.py)
        self.read_cache = ReadCache(self.perf)
        #: the single write-event publication point (writes.py): every
        #: mutation is announced once and fanned out to the read cache,
        #: materializations, and any other registered subscriber.
        self.writes = WriteNotifier()
        self.writes.subscribe(ReadCacheSubscriber(self.read_cache))
        #: named materialized derived relations; attached lazily by the
        #: first declaration so undeclared stores pay one None test
        self.materialized: Optional[MaterializationManager] = None
        # Rollback surgery (abort or statement-level rollback_to) restores
        # state through raw file/index operations; the hook guarantees no
        # cached or materialized state survives it.
        self.transactions.invalidation_hooks.append(self.writes.rollback)
        #: MVCC version chains backing snapshot Retrieves (versions.py);
        #: staging stays off — zero overhead, zero extra I/O — until a
        #: Session calls enable_mvcc()
        self.versions = VersionManager()
        self.transactions.commit_hooks.append(self.versions.commit)
        self.transactions.abort_hooks.append(self.versions.abort)
        #: the commit critical section (rank 36): Session.commit takes
        #: this latch around commit_detached so the MVCC epoch bump
        #: (versions.commit), the data-page flush, and the WAL commit
        #: record publish atomically with respect to other commits.
        #: Statement execution does NOT take it — physical safety there
        #: comes from per-unit latches (``RecordFile.latch``, rank 42)
        #: held per mutating operation, plus the session lock protocol:
        #: statements whose unit sets could overlap hold conflicting
        #: class/entity locks and never run concurrently.
        self.commit_latch = ranked_lock("store.commit_latch")
        #: guards the surrogate counter (rank 38): concurrent inserts to
        #: unrelated classes are otherwise free to race the allocator.
        self._surrogate_mutex = ranked_lock("store.surrogates")
        # this thread's pinned Snapshot, if a snapshot Retrieve is running
        self._snapshots = threading.local()

        self._file_counter = 0
        self._format_counter = 0
        self._files: Dict[str, RecordFile] = {}

        self._class_file: Dict[str, RecordFile] = {}
        self._class_format: Dict[str, int] = {}
        self._surrogate_index: Dict[str, object] = {}
        self._unique_index: Dict[Tuple[str, str], HashIndex] = {}
        self._value_index: Dict[Tuple[str, str], HashIndex] = {}

        self._mvdva_file: Dict[Tuple[str, str], RecordFile] = {}
        self._mvdva_format: Dict[Tuple[str, str], int] = {}
        self._mvdva_index: Dict[Tuple[str, str], HashIndex] = {}
        self._mvdva_seq: Dict[Tuple[str, str, int], int] = {}

        self._eva_info: Dict[Tuple[str, str], _EvaInfo] = {}
        self._common_file: Optional[RecordFile] = None
        self._common_format: Optional[int] = None

        self._next_surrogate = 1
        self._rel_counter = 0
        #: optional temporal change journal (paper §6); see enable_history
        self.history: Optional[HistoryJournal] = None

        self._build_layout()

    # ------------------------------------------------------------------ layout

    def _new_file(self, name: str) -> RecordFile:
        self._file_counter += 1
        record_file = RecordFile(self._file_counter, name, self.pool,
                                 self.design.block_size)
        record_file.wal = self.wal
        record_file.txn_context = self.transactions.txn_context
        self._files[name] = record_file
        return record_file

    def _new_format(self, record_file: RecordFile, name: str,
                    fields: Dict[str, int]) -> int:
        self._format_counter += 1
        record_file.register_format(
            RecordFormat(self._format_counter, name, fields))
        return self._format_counter

    def _build_layout(self) -> None:
        # Storage units for classes.
        for base in self.schema.base_classes():
            shared_name = f"unit--{base.name}"
            shared_file = None
            for class_name in [base.name] + self.schema.graph.descendants(base.name):
                sim_class = self.schema.get_class(class_name)
                if self.design.class_in_shared_unit(class_name):
                    if shared_file is None:
                        shared_file = self._new_file(shared_name)
                    self._class_file[class_name] = shared_file
                else:
                    self._class_file[class_name] = self._new_file(
                        f"unit--{class_name}")

        # Record formats, MV DVA units, and per-class indexes.
        for sim_class in self.schema.classes():
            class_name = sim_class.name
            fields = {"surrogate": _SURROGATE_WIDTH}
            for attr in sim_class.immediate_attributes.values():
                if attr.is_eva or attr.is_subrole or attr.is_surrogate:
                    continue
                if attr.single_valued:
                    fields[attr.name] = field_width_for_type(attr.data_type)
                elif self.design.mv_dva_mapping(attr) is MvDvaMapping.ARRAY:
                    elem = field_width_for_type(attr.data_type)
                    fields[attr.name] = elem * attr.options.max_cardinality
                else:
                    self._build_mvdva_unit(class_name, attr)
            # Foreign-key / pointer fields are added when EVAs are laid
            # out below, so the format is registered afterwards.
            sim_class._scratch_fields = fields

        # EVA structures (may add fields to class formats).
        seen = set()
        for sim_class in self.schema.classes():
            for eva in sim_class.immediate_evas():
                canonical = canonical_eva(eva)
                key = (canonical.owner_name, canonical.name)
                if key in seen:
                    continue
                seen.add(key)
                self._build_eva(canonical)

        # Now freeze class formats and create indexes.
        for sim_class in self.schema.classes():
            class_name = sim_class.name
            record_file = self._class_file[class_name]
            format_id = self._new_format(
                record_file, f"rec--{class_name}", sim_class._scratch_fields)
            self._class_format[class_name] = format_id
            del sim_class._scratch_fields

            kind = self.design.surrogate_key_kind.value
            self._surrogate_index[class_name] = make_index(
                kind if kind != "direct" else "direct",
                f"surr--{class_name}", unique=True)

            for attr in sim_class.immediate_attributes.values():
                if attr.is_eva or attr.is_subrole or attr.is_surrogate:
                    continue
                if attr.options.unique:
                    self._unique_index[(class_name, attr.name)] = HashIndex(
                        f"uniq--{class_name}--{attr.name}", unique=True)
        for class_name, attr_name in self.design.value_indexes():
            if (class_name, attr_name) not in self._unique_index:
                self._value_index[(class_name, attr_name)] = make_index(
                    self.design.value_index_kind(class_name, attr_name),
                    f"val--{class_name}--{attr_name}")

    def _build_mvdva_unit(self, class_name: str, attr) -> None:
        key = (class_name, attr.name)
        record_file = self._new_file(f"mv--{class_name}--{attr.name}")
        fields = {
            "owner": _SURROGATE_WIDTH,
            "seq": 4,
            "value": field_width_for_type(attr.data_type),
        }
        self._mvdva_file[key] = record_file
        self._mvdva_format[key] = self._new_format(
            record_file, f"mvrec--{class_name}--{attr.name}", fields)
        self._mvdva_index[key] = HashIndex(f"mvidx--{class_name}--{attr.name}")

    def _build_eva(self, canonical: EntityValuedAttribute) -> None:
        mapping = self.design.eva_mapping(canonical)
        self._rel_counter += 1
        info = _EvaInfo(canonical, self._rel_counter, mapping)
        owner_class = self.schema.get_class(canonical.owner_name)

        if mapping is EvaMapping.FOREIGN_KEY:
            # The key lives on a single-valued side (§5.2: 1:1 EVAs map to
            # foreign keys; a many:1 side may be chosen by override).
            holder = (canonical if canonical.single_valued
                      else canonical.inverse)
            info.fk_eva = holder
            info.fk_field = f"fk--{holder.name}"
            holder_class = self.schema.get_class(holder.owner_name)
            holder_class._scratch_fields[info.fk_field] = _SURROGATE_WIDTH
            info.fk_reverse = HashIndex(
                f"fkrev--{holder.owner_name}--{holder.name}")
        elif mapping is EvaMapping.POINTER:
            info.ptr_field = f"ptr--{canonical.name}"
            slots = canonical.options.max_cardinality or 8
            width = _POINTER_WIDTH * (slots if canonical.multi_valued else 1)
            owner_class._scratch_fields[info.ptr_field] = width
            info.ptr_reverse = HashIndex(
                f"ptrrev--{canonical.owner_name}--{canonical.name}")
        else:
            rel_fields = {"surr1": _SURROGATE_WIDTH, "rel": 2,
                          "surr2": _SURROGATE_WIDTH}
            if mapping is EvaMapping.COMMON:
                if self._common_file is None:
                    self._common_file = self._new_file("common-eva-structure")
                    self._common_format = self._new_format(
                        self._common_file, "common-eva", rel_fields)
                info.file = self._common_file
                info.format_id = self._common_format
            elif mapping is EvaMapping.DEDICATED:
                info.file = self._new_file(
                    f"eva--{canonical.owner_name}--{canonical.name}")
                info.format_id = self._new_format(info.file, "eva", rel_fields)
            elif mapping is EvaMapping.CLUSTERED:
                # Relationship records live in the domain class's own unit,
                # placed next to the domain entity's record; the unit holds
                # back part of each block so late-arriving relationship
                # records still fit next to their anchors.
                info.file = self._class_file[canonical.owner_name]
                info.file.cluster_reserve = max(info.file.cluster_reserve,
                                                0.35)
                info.format_id = self._new_format(
                    info.file, f"eva--{canonical.name}", rel_fields)
            prefix = f"{canonical.owner_name}--{canonical.name}"
            info.forward = HashIndex(f"fwd--{prefix}")
            info.reverse = HashIndex(f"rev--{prefix}")

        self._eva_info[(canonical.owner_name, canonical.name)] = info

    # ------------------------------------------------------------- identities

    def new_surrogate(self) -> int:
        """Allocate the next system surrogate (unique, never reused)."""
        with self._surrogate_mutex:
            surrogate = self._next_surrogate
            self._next_surrogate += 1
        self.transactions.record_undo(lambda: None)
        return surrogate

    def eva_info(self, eva: EntityValuedAttribute) -> _EvaInfo:
        canonical = canonical_eva(eva)
        return self._eva_info[(canonical.owner_name, canonical.name)]

    def class_file(self, class_name: str) -> RecordFile:
        return self._class_file[canon(class_name)]

    def enable_history(self) -> HistoryJournal:
        """Turn on the temporal change journal (paper §6)."""
        if self.history is None:
            self.history = HistoryJournal()
        return self.history

    # ---------------------------------------------------------- MVCC snapshots

    def enable_mvcc(self) -> None:
        """Start staging pre-images on every mutation so snapshot
        Retrieves can run lock-free.  One-way: turned on by the first
        MVCC :class:`~repro.engine.sessions.Session` on this store."""
        self.versions.enabled = True

    def begin_snapshot(self, txn_id: Optional[int] = None):
        """Pin a read view at the current commit epoch (enables MVCC on
        first use).  ``txn_id`` is the reader's own open transaction, so
        it sees its uncommitted writes."""
        self.enable_mvcc()
        return self.versions.begin_snapshot(txn_id)

    def end_snapshot(self, snap) -> None:
        self.versions.end_snapshot(snap)

    def current_snapshot(self):
        """The Snapshot pinned on this thread, or None (physical reads)."""
        return getattr(self._snapshots, "snap", None)

    @contextmanager
    def snapshot_scope(self, snap):
        """Route this thread's reads through ``snap`` for the duration of
        the block (nestable; morsel workers re-enter the query's scope)."""
        previous = getattr(self._snapshots, "snap", None)
        self._snapshots.snap = snap
        try:
            yield snap
        finally:
            self._snapshots.snap = previous

    # -- pre-image staging (writer side) -----------------------------------------
    #
    # Every mutator stages the logical read unit it is about to change
    # BEFORE touching it.  That ordering is what makes the lock-free
    # reader's double-check protocol sound: probe versions, read
    # physical, re-probe — a concurrent mutation is always visible to
    # the second probe.

    def _staging_txn(self):
        """The transaction id to stage under, or ``_STAGE_SKIP``.

        Skipped when MVCC is off, and during rollback: undo compensation
        restores exactly the physical state the pending pre-images
        describe, so staging it would be circular."""
        if not self.versions.enabled:
            return _STAGE_SKIP
        txn_id, rolling_back = self.transactions.txn_context()
        if rolling_back:
            return _STAGE_SKIP
        return txn_id

    def _stage_record(self, class_name: str, surrogate: int) -> None:
        txn_id = self._staging_txn()
        if txn_id is _STAGE_SKIP:
            return
        key = ("rec", class_name, surrogate)
        if self.versions.is_staged(key):
            return
        rid = self._surrogate_index[class_name].lookup_one(surrogate)
        if rid is None:
            pre = ABSENT
        else:
            _, values = self._class_file[class_name].read(rid)
            pre = (rid, dict(values))
        self.versions.stage(txn_id, key, pre, class_name)

    def _stage_member(self, class_name: str, surrogate: int,
                      adding: bool) -> None:
        txn_id = self._staging_txn()
        if txn_id is _STAGE_SKIP:
            return
        self.versions.stage_member(txn_id, class_name, surrogate, adding)

    def _stage_mv(self, class_name: str, attr_name: str,
                  surrogate: int) -> None:
        txn_id = self._staging_txn()
        if txn_id is _STAGE_SKIP:
            return
        key = ("mv", class_name, attr_name, surrogate)
        if self.versions.is_staged(key):
            return
        pre = tuple(self._mvdva_values_physical(surrogate, class_name,
                                                attr_name))
        self.versions.stage(txn_id, key, pre, class_name)

    def _stage_fan(self, info: _EvaInfo, domain_surr: int,
                   range_surr: int) -> None:
        """Stage the fan-out pre-images an include/exclude is about to
        change — one key per affected (side, surrogate)."""
        txn_id = self._staging_txn()
        if txn_id is _STAGE_SKIP:
            return
        canonical = info.canonical
        if info.self_inverse:
            # Self-inverse EVAs serve both directions from one cache side.
            for surr in {domain_surr, range_surr}:
                self._stage_one_fan(txn_id, info, True, surr,
                                    canonical.owner_name)
            return
        self._stage_one_fan(txn_id, info, True, domain_surr,
                            canonical.owner_name)
        self._stage_one_fan(txn_id, info, False, range_surr,
                            canonical.range_class_name)

    def _stage_one_fan(self, txn_id, info: _EvaInfo, side: bool,
                       surrogate: int, class_name: str) -> None:
        key = ("fan", info.rel_id, side, surrogate)
        if self.versions.is_staged(key):
            return
        try:
            if info.self_inverse:
                pre = tuple(self._traverse(info, surrogate, forward=True)
                            + self._traverse(info, surrogate, forward=False))
            else:
                pre = tuple(self._traverse(info, surrogate, forward=side))
        except IntegrityError:
            # The entity has no record on the side that holds the key
            # (e.g. EXCLUDE against a missing role): its fan cannot
            # change, so there is nothing to stage.
            return
        self.versions.stage(txn_id, key, pre, class_name)

    # ------------------------------------------------------------------- roles

    def has_role(self, surrogate: int, class_name: str) -> bool:
        return self._role_rid(surrogate, canon(class_name)) is not None

    def _role_rid(self, surrogate: int, class_name: str):
        """RID of the entity's role record (None when the role is absent),
        through the role cache.  ``class_name`` must be canonical."""
        snap = self.current_snapshot()
        if snap is not None:
            return self._role_rid_snapshot(snap, surrogate, class_name)
        rid = self.read_cache.get_role(class_name, surrogate)
        if rid is not MISSING:
            return rid
        rid = self._surrogate_index[class_name].lookup_one(surrogate)
        self.read_cache.put_role(class_name, surrogate, rid)
        return rid

    def _role_rid_snapshot(self, snap, surrogate: int, class_name: str):
        """Snapshot-correct role RID, lock-free.  The shared cache may be
        read (a version miss proves physical state IS snapshot state) but
        never written — a snapshot result must not outlive its epoch in a
        cache writers invalidate by physical state."""
        key = ("rec", class_name, surrogate)
        versions = self.versions
        hit, pre = versions.lookup(snap, key)
        if not hit:
            rid = error = None
            try:
                cached = self.read_cache.get_role(class_name, surrogate)
                if cached is not MISSING:
                    rid = cached
                else:
                    rid = self._surrogate_index[class_name].lookup_one(
                        surrogate)
            except Exception as exc:    # racing writer reshaped the index
                error = exc
            hit, pre = versions.lookup(snap, key)
            if not hit:
                if error is not None:
                    raise error
                return rid
        return None if pre is ABSENT else pre[0]

    def roles_of(self, surrogate: int, base_class: str) -> List[str]:
        """All classes in the hierarchy where the entity currently has a
        record, superclasses first."""
        base = canon(base_class)
        names = [base] + self.schema.graph.descendants(base)
        return [n for n in names if self.has_role(surrogate, n)]

    def add_role(self, surrogate: int, class_name: str,
                 values: Optional[Dict[str, object]] = None) -> RID:
        """Create the entity's record in ``class_name``'s LUC.

        ``values`` maps *immediate* single-valued DVA names (and array MV
        DVAs, as tuples) to values; unset fields are null.  Superclass
        roles must already exist (the engine inserts them in topological
        order).
        """
        class_name = canon(class_name)
        sim_class = self.schema.get_class(class_name)
        if self.has_role(surrogate, class_name):
            raise IntegrityError(
                f"entity {surrogate} already has role {class_name!r}")
        for super_name in sim_class.superclass_names:
            if not self.has_role(surrogate, super_name):
                raise IntegrityError(
                    f"entity {surrogate} lacks superclass role {super_name!r}")
        self._stage_record(class_name, surrogate)   # pre-image: ABSENT
        self._stage_member(class_name, surrogate, adding=True)

        record_file = self._class_file[class_name]
        format_id = self._class_format[class_name]
        record = {name: NULL
                  for name in record_file.formats[format_id].fields}
        record["surrogate"] = surrogate
        for attr_name, value in (values or {}).items():
            attr_name = canon(attr_name)
            if attr_name not in record:
                raise CatalogError(
                    f"{class_name!r} record has no field {attr_name!r}")
            record[attr_name] = value

        near = self._cluster_anchor(surrogate, sim_class)
        with record_file.latch:
            rid = record_file.insert(format_id, record, near=near)
            index = self._surrogate_index[class_name]
            index.insert(surrogate, rid)
            # The role check above cached a negative membership; drop it
            # now, before the unique-index checks below can raise.
            self.writes.role_changed(class_name, surrogate)
            if self.history is not None:
                self.history.record_role(surrogate, class_name,
                                         acquired=True)
                # Initial DVA values arrive with the role record, not
                # through write_dva; journal them as NULL -> value.
                for field_name, value in (values or {}).items():
                    if field_name.startswith(("fk--", "ptr--")):
                        continue
                    if not is_null(value):
                        self.history.record_set(surrogate,
                                                canon(field_name),
                                                NULL, value)

            for (cls, attr_name), unique_index in self._unique_index.items():
                if cls != class_name:
                    continue
                value = record.get(attr_name)
                if not is_null(value):
                    self._unique_insert(unique_index, value, rid,
                                        class_name, attr_name)
            for (cls, attr_name), value_index in self._value_index.items():
                if cls != class_name:
                    continue
                value = record.get(attr_name)
                if not is_null(value):
                    value_index.insert(value, rid)

        def undo():
            self._drop_role_record(surrogate, class_name)
        self.transactions.record_undo(undo)
        return rid

    def _cluster_anchor(self, surrogate: int, sim_class) -> Optional[RID]:
        """When the class shares a unit with its superclass chain, place the
        new role record next to the entity's nearest existing record."""
        record_file = self._class_file[sim_class.name]
        current = sim_class
        while current.superclass_names:
            parent = self.schema.get_class(current.superclass_names[0])
            if self._class_file.get(parent.name) is not record_file:
                break
            rid = self._surrogate_index[parent.name].lookup_one(surrogate)
            if rid is not None:
                return rid
            current = parent
        return None

    def remove_role(self, surrogate: int, class_name: str) -> None:
        """Remove a role; cascades to subclass roles, EVA instances and MV
        DVA values (structural integrity, paper §5.1)."""
        class_name = canon(class_name)
        if not self.has_role(surrogate, class_name):
            raise IntegrityError(
                f"entity {surrogate} has no role {class_name!r}")
        affected = [class_name] + [
            d for d in self.schema.graph.descendants(class_name)
            if self.has_role(surrogate, d)]
        # Subclasses first.
        for name in sorted(affected, key=lambda n: -self.schema.get_class(n).level):
            self._remove_single_role(surrogate, name)

    def _remove_single_role(self, surrogate: int, class_name: str) -> None:
        sim_class = self.schema.get_class(class_name)
        # Drop EVA instances where a removed role is either endpoint.
        for eva in sim_class.immediate_evas():
            for target in list(self.eva_targets(surrogate, eva)):
                self.eva_exclude(surrogate, eva, target)
        # Drop separate-unit MV DVA values.
        for attr in sim_class.immediate_attributes.values():
            if (not attr.is_eva and not attr.is_subrole and attr.multi_valued
                    and self.design.mv_dva_mapping(attr)
                    is MvDvaMapping.SEPARATE_UNIT):
                self._mvdva_clear(surrogate, class_name, attr.name)
        rid, format_id, record = self._drop_role_record(surrogate, class_name)
        if self.history is not None:
            self.history.record_role(surrogate, class_name, acquired=False)

        def undo():
            self._restore_role_record(surrogate, class_name, rid, format_id,
                                      record)
        self.transactions.record_undo(undo)

    def _drop_role_record(self, surrogate: int, class_name: str
                          ) -> Tuple[RID, int, Dict[str, object]]:
        self._stage_record(class_name, surrogate)
        self._stage_member(class_name, surrogate, adding=False)
        record_file = self._class_file[class_name]
        index = self._surrogate_index[class_name]
        with record_file.latch:
            rid = index.lookup_one(surrogate)
            if rid is None:
                raise IntegrityError(
                    f"entity {surrogate} has no role {class_name!r}")
            record = record_file.delete(rid)
            index.delete(surrogate, rid)
            self.writes.role_changed(class_name, surrogate)
            for (cls, attr_name), unique_index in self._unique_index.items():
                if cls == class_name and not is_null(record.get(attr_name)):
                    unique_index.delete(record[attr_name], rid)
            for (cls, attr_name), value_index in self._value_index.items():
                if cls == class_name and not is_null(record.get(attr_name)):
                    value_index.delete(record[attr_name], rid)
        return rid, self._class_format[class_name], record

    def _restore_role_record(self, surrogate: int, class_name: str, rid: RID,
                             format_id: int, record: Dict[str, object]) -> None:
        """Undo path: put a dropped role record back at its original RID so
        that RIDs held by indexes and undo closures stay valid."""
        record_file = self._class_file[class_name]
        with record_file.latch:
            record_file.undelete(rid, format_id, record)
            self._surrogate_index[class_name].insert(surrogate, rid)
            self.writes.role_changed(class_name, surrogate)
            for (cls, attr_name), unique_index in self._unique_index.items():
                if cls == class_name and not is_null(record.get(attr_name)):
                    unique_index.insert(record[attr_name], rid)
            for (cls, attr_name), value_index in self._value_index.items():
                if cls == class_name and not is_null(record.get(attr_name)):
                    value_index.insert(record[attr_name], rid)

    def insert_entity(self, class_name: str,
                      values: Optional[Dict[str, object]] = None) -> int:
        """Convenience: create a new entity with all roles from the base
        class down to ``class_name``, distributing ``values`` to the classes
        that declare them.  EVAs and engine-level checks are NOT handled
        here — this is the Mapper-level path used by tests and benchmarks;
        DML INSERT goes through the engine."""
        class_name = canon(class_name)
        sim_class = self.schema.get_class(class_name)
        base = sim_class.base_class_name
        chain = ([base] + list(self.schema.graph.insertion_path(
                     base, class_name))
                 if class_name != base else [base])
        by_class: Dict[str, Dict[str, object]] = {c: {} for c in chain}
        deferred_mv: List[Tuple[object, List[object]]] = []
        for attr_name, value in (values or {}).items():
            attr = sim_class.attribute(attr_name)
            if attr.is_eva:
                raise CatalogError(
                    "insert_entity handles DVAs only; use eva_include")
            owner = canon(attr.owner_name)
            if owner not in by_class:
                raise CatalogError(
                    f"attribute {attr_name!r} belongs to {owner!r}, outside "
                    f"the insertion chain {chain}")
            if (attr.multi_valued and self.design.mv_dva_mapping(attr)
                    is MvDvaMapping.SEPARATE_UNIT):
                deferred_mv.append((attr, list(value)))
            else:
                by_class[owner][attr.name] = self._encode_mv(attr, value)
        surrogate = self.new_surrogate()
        for name in chain:
            self.add_role(surrogate, name, by_class[name])
        for attr, items in deferred_mv:
            for item in items:
                self.mv_include(surrogate, attr, item)
        return surrogate

    def _encode_mv(self, attr, value):
        if (attr.multi_valued
                and self.design.mv_dva_mapping(attr) is MvDvaMapping.ARRAY):
            return tuple(value)
        return value

    # ------------------------------------------------------------------ DVAs

    def record_of(self, surrogate: int, class_name: str
                  ) -> Tuple[RID, Dict[str, object]]:
        class_name = canon(class_name)
        snap = self.current_snapshot()
        if snap is not None:
            return self._record_of_snapshot(snap, surrogate, class_name)
        cached = self.read_cache.get_record(class_name, surrogate)
        if cached is not None:
            return cached
        rid = self._role_rid(surrogate, class_name)
        if rid is None:
            raise IntegrityError(
                f"entity {surrogate} has no role {class_name!r}")
        _, values = self._class_file[class_name].read(rid)
        self.perf.bump("records_decoded")
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.count("mapper.records_decoded")
            trace.count(f"mapper.decoded[{class_name}]")
        self.read_cache.put_record(class_name, surrogate, rid, values)
        return rid, values

    def _record_of_snapshot(self, snap, surrogate: int, class_name: str
                            ) -> Tuple[RID, Dict[str, object]]:
        """Snapshot-correct decoded record, lock-free (double-check
        protocol; see the staging section).  The returned dict is a copy
        when served from a version chain, so callers can't corrupt it."""
        key = ("rec", class_name, surrogate)
        versions = self.versions
        hit, pre = versions.lookup(snap, key)
        if not hit:
            result = error = None
            try:
                cached = self.read_cache.get_record(class_name, surrogate)
                if cached is not None:
                    result = cached
                else:
                    rid = self._role_rid_snapshot(snap, surrogate,
                                                  class_name)
                    if rid is None:
                        error = IntegrityError(
                            f"entity {surrogate} has no role "
                            f"{class_name!r}")
                    else:
                        _, values = self._class_file[class_name].read(rid)
                        self.perf.bump("records_decoded")
                        result = (rid, values)
            except Exception as exc:    # racing writer moved the record
                error = exc
            hit, pre = versions.lookup(snap, key)
            if not hit:
                if error is not None:
                    raise error
                return result
        if pre is ABSENT:
            raise IntegrityError(
                f"entity {surrogate} has no role {class_name!r}")
        return pre[0], dict(pre[1])

    def fetch_many(self, class_name: str, surrogates
                   ) -> Dict[int, Tuple[RID, Dict[str, object]]]:
        """Batched :meth:`record_of`: decoded records for every surrogate
        (each must hold the role).  Cache traffic and decode counters
        match per-surrogate calls exactly, but the cache probe and the
        counter bumps aggregate over the whole batch — the operator
        algebra's amortized decode path."""
        class_name = canon(class_name)
        snap = self.current_snapshot()
        if snap is not None:
            return {surrogate: self._record_of_snapshot(snap, surrogate,
                                                        class_name)
                    for surrogate in surrogates}
        found, missing = self.read_cache.get_record_batch(class_name,
                                                          surrogates)
        if not missing:
            return found
        record_file = self._class_file[class_name]
        decoded = 0
        for surrogate in missing:
            if surrogate in found:      # duplicate within the batch
                continue
            rid = self._role_rid(surrogate, class_name)
            if rid is None:
                raise IntegrityError(
                    f"entity {surrogate} has no role {class_name!r}")
            _, values = record_file.read(rid)
            decoded += 1
            self.read_cache.put_record(class_name, surrogate, rid, values)
            found[surrogate] = (rid, values)
        if decoded:
            self.perf.bump("records_decoded", decoded)
            trace = self.trace
            if trace is not None and trace.enabled:
                trace.count("mapper.records_decoded", decoded)
                trace.count(f"mapper.decoded[{class_name}]", decoded)
        return found

    def read_dva(self, surrogate: int, attr):
        """Read a DVA (single value, or list for MV)."""
        owner = canon(attr.owner_name)
        if attr.is_subrole:
            return self._read_subrole(surrogate, attr)
        if attr.is_surrogate:
            return surrogate
        if attr.single_valued:
            _, record = self.record_of(surrogate, owner)
            return record.get(attr.name, NULL)
        if self.design.mv_dva_mapping(attr) is MvDvaMapping.ARRAY:
            _, record = self.record_of(surrogate, owner)
            stored = record.get(attr.name, NULL)
            return [] if is_null(stored) else list(stored)
        return self._mvdva_values(surrogate, owner, attr.name)

    def _read_subrole(self, surrogate: int, attr):
        roles = [name for name in attr.subclass_names
                 if self.has_role(surrogate, canon(name))]
        if attr.multi_valued:
            return [canon(r) for r in roles]
        return canon(roles[0]) if roles else NULL

    def write_dva(self, surrogate: int, attr, value) -> None:
        """Write a single-valued DVA (or replace an array MV DVA)."""
        if attr.is_subrole or attr.is_surrogate:
            raise IntegrityError(
                f"attribute {attr.name!r} is system-maintained and read-only")
        owner = canon(attr.owner_name)
        if self.history is not None:
            old = self.read_dva(surrogate, attr)
            self.history.record_set(surrogate, attr.name, old, value)
        if attr.multi_valued:
            if self.design.mv_dva_mapping(attr) is MvDvaMapping.ARRAY:
                self._write_field(surrogate, owner, attr.name,
                                  tuple(value) if not is_null(value) else NULL)
            else:
                self._mvdva_clear(surrogate, owner, attr.name)
                for item in (value or []):
                    self._mvdva_append(surrogate, owner, attr.name, item)
            return
        self._write_field(surrogate, owner, attr.name, value,
                          maintain_indexes=True)

    def _write_field(self, surrogate: int, class_name: str, field: str,
                     value, maintain_indexes: bool = False) -> None:
        with self._class_file[class_name].latch:
            self._stage_record(class_name, surrogate)
            rid, record = self.record_of(surrogate, class_name)
            old = record.get(field, NULL)
            if maintain_indexes:
                unique_index = self._unique_index.get((class_name, field))
                if unique_index is not None:
                    if not is_null(value):
                        existing = unique_index.lookup_one(value)
                        if existing is not None and existing != rid:
                            raise UniquenessViolation(
                                f"{class_name}.{field} = {value!r} "
                                f"already used")
                    if not is_null(old):
                        unique_index.delete(old, rid)
                    if not is_null(value):
                        unique_index.insert(value, rid)
                value_index = self._value_index.get((class_name, field))
                if value_index is not None:
                    if not is_null(old):
                        value_index.delete(old, rid)
                    if not is_null(value):
                        value_index.insert(value, rid)
            self._class_file[class_name].update(rid, {field: value})
            self.writes.record_changed(class_name, surrogate)

        def undo():
            self._write_field(surrogate, class_name, field, old,
                              maintain_indexes=maintain_indexes)
        self.transactions.record_undo(undo)

    def _unique_insert(self, index: HashIndex, value, rid: RID,
                       class_name: str, attr_name: str) -> None:
        if index.lookup_one(value) is not None:
            raise UniquenessViolation(
                f"{class_name}.{attr_name} = {value!r} already used")
        index.insert(value, rid)

    # -- separate-unit MV DVAs ---------------------------------------------------

    def _mvdva_values(self, surrogate: int, class_name: str,
                      attr_name: str) -> List[object]:
        snap = self.current_snapshot()
        if snap is None:
            return self._mvdva_values_physical(surrogate, class_name,
                                               attr_name)
        key = ("mv", class_name, attr_name, surrogate)
        versions = self.versions
        hit, pre = versions.lookup(snap, key)
        if not hit:
            values = error = None
            try:
                values = self._mvdva_values_physical(surrogate, class_name,
                                                     attr_name)
            except Exception as exc:    # racing writer reshaped the unit
                error = exc
            hit, pre = versions.lookup(snap, key)
            if not hit:
                if error is not None:
                    raise error
                return values
        return list(pre)

    def _mvdva_values_physical(self, surrogate: int, class_name: str,
                               attr_name: str) -> List[object]:
        key = (class_name, attr_name)
        record_file = self._mvdva_file[key]
        rows = []
        for rid in self._mvdva_index[key].lookup(surrogate):
            _, record = record_file.read(rid)
            rows.append((record["seq"], record["value"]))
        rows.sort(key=lambda pair: pair[0])
        return [value for _, value in rows]

    def mv_include(self, surrogate: int, attr, value) -> None:
        """INCLUDE one value into an MV DVA."""
        owner = canon(attr.owner_name)
        if self.history is not None:
            self.history.record_include(surrogate, attr.name, value)
        if self.design.mv_dva_mapping(attr) is MvDvaMapping.ARRAY:
            current = self.read_dva(surrogate, attr)
            current.append(value)
            self._write_field(surrogate, owner, attr.name, tuple(current))
        else:
            self._mvdva_append(surrogate, owner, attr.name, value)

    def mv_exclude(self, surrogate: int, attr, value) -> bool:
        """EXCLUDE one occurrence of ``value``; returns True when found."""
        removed = self._mv_exclude_inner(surrogate, attr, value)
        if removed and self.history is not None:
            self.history.record_exclude(surrogate, attr.name, value)
        return removed

    def _mv_exclude_inner(self, surrogate: int, attr, value) -> bool:
        owner = canon(attr.owner_name)
        if self.design.mv_dva_mapping(attr) is MvDvaMapping.ARRAY:
            current = self.read_dva(surrogate, attr)
            if value not in current:
                return False
            current.remove(value)
            self._write_field(surrogate, owner, attr.name, tuple(current))
            return True
        key = (owner, attr.name)
        record_file = self._mvdva_file[key]
        with record_file.latch:
            self._stage_mv(owner, attr.name, surrogate)
            for rid in self._mvdva_index[key].lookup(surrogate):
                _, record = record_file.read(rid)
                if record["value"] == value:
                    record_file.delete(rid)
                    self._mvdva_index[key].delete(surrogate, rid)
                    seq = record["seq"]

                    def undo():
                        # Abort replay runs outside any statement-level
                        # latching, so the closure latches the unit itself.
                        with record_file.latch:
                            record_file.undelete(
                                rid, self._mvdva_format[key],
                                {"owner": surrogate, "seq": seq,
                                 "value": value})
                            self._mvdva_index[key].insert(surrogate, rid)
                    self.transactions.record_undo(undo)
                    self.writes.note_write()
                    return True
        return False

    def _mvdva_append(self, surrogate: int, class_name: str, attr_name: str,
                      value) -> None:
        key = (class_name, attr_name)
        record_file = self._mvdva_file[key]
        with record_file.latch:
            self._stage_mv(class_name, attr_name, surrogate)
            seq_key = (class_name, attr_name, surrogate)
            seq = self._mvdva_seq.get(seq_key, 0) + 1
            self._mvdva_seq[seq_key] = seq
            rid = record_file.insert(
                self._mvdva_format[key],
                {"owner": surrogate, "seq": seq, "value": value})
            self._mvdva_index[key].insert(surrogate, rid)

        def undo():
            with record_file.latch:
                record_file.delete(rid)
                self._mvdva_index[key].delete(surrogate, rid)
        self.transactions.record_undo(undo)
        # Separate-unit MV values are not cached here, but engine memos
        # validated against the epoch must still expire.
        self.writes.note_write()

    def _mvdva_clear(self, surrogate: int, class_name: str,
                     attr_name: str) -> None:
        key = (class_name, attr_name)
        self.writes.note_write()
        record_file = self._mvdva_file[key]
        with record_file.latch:
            self._stage_mv(class_name, attr_name, surrogate)
            for rid in list(self._mvdva_index[key].lookup(surrogate)):
                _, record = record_file.read(rid)
                record_file.delete(rid)
                self._mvdva_index[key].delete(surrogate, rid)
                seq, value = record["seq"], record["value"]

                def undo(rid=rid, seq=seq, value=value):
                    with record_file.latch:
                        record_file.undelete(
                            rid, self._mvdva_format[key],
                            {"owner": surrogate, "seq": seq, "value": value})
                        self._mvdva_index[key].insert(surrogate, rid)
                self.transactions.record_undo(undo)

    # ------------------------------------------- materialized derived relations

    def attach_materializations(self) -> MaterializationManager:
        """Return the store's materialization manager, creating it (and
        subscribing it to the write-event hub) on first use."""
        if self.materialized is None:
            self.materialized = MaterializationManager(self)
            self.writes.subscribe(self.materialized)
        return self.materialized

    # ------------------------------------------------------------------- EVAs

    def eva_targets(self, surrogate: int, eva: EntityValuedAttribute
                    ) -> List[int]:
        """Surrogates related to ``surrogate`` through ``eva``.

        Works from either side of the pair; the Mapper "assumes the
        responsibility of traversing a relationship, no matter how it is
        physically mapped" (§5.1).
        """
        info = self.eva_info(eva)
        canonical = info.canonical
        side = bool(info.self_inverse or eva is canonical)
        snap = self.current_snapshot()
        if snap is not None:
            return self._eva_targets_snapshot(snap, info, side, surrogate)
        cached = self.read_cache.get_fanout(info.rel_id, side, surrogate)
        if cached is not None:
            return list(cached)
        if self.materialized is not None:
            served = self.materialized.serve_eva(info.rel_id, side, surrogate)
            if served is not None:
                return list(served)
        if info.self_inverse:
            targets = (self._traverse(info, surrogate, forward=True)
                       + self._traverse(info, surrogate, forward=False))
        else:
            targets = self._traverse(info, surrogate, forward=side)
        self.read_cache.put_fanout(info.rel_id, side, surrogate,
                                   tuple(targets))
        return targets

    def _eva_targets_snapshot(self, snap, info: _EvaInfo, side: bool,
                              surrogate: int) -> List[int]:
        """Snapshot-correct fan-out, lock-free (double-check protocol)."""
        key = ("fan", info.rel_id, side, surrogate)
        versions = self.versions
        hit, pre = versions.lookup(snap, key)
        if not hit:
            targets = error = None
            try:
                cached = self.read_cache.get_fanout(info.rel_id, side,
                                                    surrogate)
                if cached is not None:
                    targets = list(cached)
                elif info.self_inverse:
                    targets = (self._traverse(info, surrogate, forward=True)
                               + self._traverse(info, surrogate,
                                                forward=False))
                else:
                    targets = self._traverse(info, surrogate, forward=side)
            except Exception as exc:    # racing writer reshaped the unit
                error = exc
            hit, pre = versions.lookup(snap, key)
            if not hit:
                if error is not None:
                    raise error
                return targets
        return list(pre)

    def traverse_eva_batch(self, surrogates, eva: EntityValuedAttribute
                           ) -> Dict[int, List[int]]:
        """Batched :meth:`eva_targets` for distinct ``surrogates``: one
        fan-out cache probe covers the whole batch, misses traverse the
        physical mapping individually.  Per-surrogate cache counters are
        identical to individual calls, aggregated into two bumps."""
        info = self.eva_info(eva)
        canonical = info.canonical
        side = bool(info.self_inverse or eva is canonical)
        snap = self.current_snapshot()
        if snap is not None:
            return {surrogate: self._eva_targets_snapshot(snap, info, side,
                                                          surrogate)
                    for surrogate in surrogates}
        found, missing = self.read_cache.get_fanout_batch(info.rel_id, side,
                                                          surrogates)
        results = {surrogate: list(targets)
                   for surrogate, targets in found.items()}
        mats = self.materialized
        for surrogate in missing:
            if surrogate in results:    # duplicate within the batch
                continue
            if mats is not None:
                served = mats.serve_eva(info.rel_id, side, surrogate)
                if served is not None:
                    results[surrogate] = list(served)
                    continue
            if info.self_inverse:
                targets = (self._traverse(info, surrogate, forward=True)
                           + self._traverse(info, surrogate, forward=False))
            else:
                targets = self._traverse(info, surrogate, forward=side)
            self.read_cache.put_fanout(info.rel_id, side, surrogate,
                                       tuple(targets))
            results[surrogate] = targets
        return results

    def _traverse(self, info: _EvaInfo, surrogate: int,
                  forward: bool) -> List[int]:
        mapping = info.mapping
        if mapping is EvaMapping.FOREIGN_KEY:
            # "forward" means the canonical direction; the key may be held
            # on either side.  Plain side-identity comparison would break
            # on self-inverse EVAs (SPOUSE), where both sides are the same
            # object: forward reads the field, reverse uses the index.
            reads_field = forward == (info.fk_eva is info.canonical)
            if reads_field:
                _, record = self.record_of(surrogate,
                                           info.fk_eva.owner_name)
                value = record.get(info.fk_field, NULL)
                return [] if is_null(value) else [value]
            return self._fk_owners(info, surrogate)
        if mapping is EvaMapping.POINTER:
            if forward:
                _, record = self.record_of(surrogate,
                                           info.canonical.owner_name)
                stored = record.get(info.ptr_field, NULL)
                if is_null(stored):
                    return []
                targets = []
                range_file = self._class_file[info.canonical.range_class_name]
                for target_surr, block, slot in stored:
                    # Absolute address: fetch the target block directly.
                    self.pool.get(range_file.file_id, block)
                    targets.append(target_surr)
                return targets
            return self._ptr_owners(info, surrogate)
        # Structure-based mappings.
        index = info.forward if forward else info.reverse
        out_field = "surr2" if forward else "surr1"
        results: List[int] = []
        for rid in index.lookup((info.rel_id, surrogate)):
            _, record = info.file.read(rid)
            results.append(record[out_field])
        return results

    def _fk_owners(self, info: _EvaInfo, target: int) -> List[int]:
        owners = []
        for rid in info.fk_reverse.lookup(target):
            _, record = self._class_file[info.fk_eva.owner_name].read(rid)
            owners.append(record["surrogate"])
        return owners

    def _ptr_owners(self, info: _EvaInfo, target: int) -> List[int]:
        owners = []
        for rid in info.ptr_reverse.lookup(target):
            _, record = self._class_file[info.canonical.owner_name].read(rid)
            owners.append(record["surrogate"])
        return owners

    def eva_include(self, surrogate: int, eva: EntityValuedAttribute,
                    target: int) -> None:
        """Add one relationship instance (from ``eva``'s side of the pair)."""
        info = self.eva_info(eva)
        canonical = info.canonical
        if eva is canonical or info.self_inverse:
            domain_surr, range_surr = surrogate, target
        else:
            domain_surr, range_surr = target, surrogate
        self._require_role(domain_surr, canonical.owner_name)
        self._require_role(range_surr, canonical.range_class_name)
        self._stage_fan(info, domain_surr, range_surr)

        mapping = info.mapping
        if mapping is EvaMapping.FOREIGN_KEY:
            if info.fk_eva is canonical:
                holder_surr, other_surr = domain_surr, range_surr
            else:
                holder_surr, other_surr = range_surr, domain_surr
            rid, record = self.record_of(holder_surr, info.fk_eva.owner_name)
            if not is_null(record.get(info.fk_field, NULL)):
                raise IntegrityError(
                    f"{info.fk_eva.owner_name}.{info.fk_eva.name} of entity "
                    f"{holder_surr} already set; exclude it first")
            self._write_field(holder_surr, info.fk_eva.owner_name,
                              info.fk_field, other_surr)
            info.fk_reverse.insert(other_surr, rid)
            self.transactions.record_undo(
                lambda: info.fk_reverse.delete(other_surr, rid))
        elif mapping is EvaMapping.POINTER:
            target_rid = self._surrogate_index[
                canonical.range_class_name].lookup_one(range_surr)
            owner_rid, record = self.record_of(domain_surr,
                                               canonical.owner_name)
            stored = record.get(info.ptr_field, NULL)
            pointers = [] if is_null(stored) else list(stored)
            pointers.append((range_surr, target_rid.block, target_rid.slot))
            self._write_field(domain_surr, canonical.owner_name,
                              info.ptr_field, tuple(pointers))
            info.ptr_reverse.insert(range_surr, owner_rid)
            self.transactions.record_undo(
                lambda: info.ptr_reverse.delete(range_surr, owner_rid))
        else:
            near = None
            if mapping is EvaMapping.CLUSTERED:
                near = self._surrogate_index[
                    canonical.owner_name].lookup_one(domain_surr)
            # The fan-record unit may be the COMMON file shared by every
            # relationship, so its latch is mandatory even when the
            # statements' class locks are disjoint.
            with info.file.latch:
                rid = info.file.insert(info.format_id,
                                       {"surr1": domain_surr,
                                        "rel": info.rel_id,
                                        "surr2": range_surr},
                                       near=near)
                info.forward.insert((info.rel_id, domain_surr), rid)
                info.reverse.insert((info.rel_id, range_surr), rid)

            def undo():
                with info.file.latch:
                    info.file.delete(rid)
                    info.forward.delete((info.rel_id, domain_surr), rid)
                    info.reverse.delete((info.rel_id, range_surr), rid)
                    info.instance_count -= 1
            self.transactions.record_undo(undo)
        info.instance_count += 1
        self.writes.eva_changed(info.rel_id, domain_surr, range_surr,
                                added=True)
        if self.history is not None:
            self.history.record_include(surrogate, eva.name, target)
            if eva.inverse is not eva:
                self.history.record_include(target, eva.inverse.name,
                                            surrogate)
            else:
                self.history.record_include(target, eva.name, surrogate)

    def eva_exclude(self, surrogate: int, eva: EntityValuedAttribute,
                    target: int) -> bool:
        """Remove one relationship instance; returns True when one existed."""
        info = self.eva_info(eva)
        canonical = info.canonical
        if eva is canonical or info.self_inverse:
            domain_surr, range_surr = surrogate, target
        else:
            domain_surr, range_surr = target, surrogate
        self._stage_fan(info, domain_surr, range_surr)
        if info.self_inverse:
            # Try both orientations.
            removed = (self._exclude_oriented(info, surrogate, target)
                       or self._exclude_oriented(info, target, surrogate))
        elif eva is canonical:
            removed = self._exclude_oriented(info, surrogate, target)
        else:
            removed = self._exclude_oriented(info, target, surrogate)
        if removed:
            self.writes.eva_changed(info.rel_id, domain_surr, range_surr,
                                    added=False)
        if removed and self.history is not None:
            self.history.record_exclude(surrogate, eva.name, target)
            if eva.inverse is not eva:
                self.history.record_exclude(target, eva.inverse.name,
                                            surrogate)
            else:
                self.history.record_exclude(target, eva.name, surrogate)
        return removed

    def _exclude_oriented(self, info: _EvaInfo, domain_surr: int,
                          range_surr: int) -> bool:
        canonical = info.canonical
        mapping = info.mapping
        if mapping is EvaMapping.FOREIGN_KEY:
            if info.fk_eva is canonical:
                holder_surr, other_surr = domain_surr, range_surr
            else:
                holder_surr, other_surr = range_surr, domain_surr
            try:
                rid, record = self.record_of(holder_surr,
                                             info.fk_eva.owner_name)
            except IntegrityError:
                return False
            if record.get(info.fk_field, NULL) != other_surr:
                return False
            self._write_field(holder_surr, info.fk_eva.owner_name,
                              info.fk_field, NULL)
            info.fk_reverse.delete(other_surr, rid)
            self.transactions.record_undo(
                lambda: info.fk_reverse.insert(other_surr, rid))
            info.instance_count -= 1
            return True
        if mapping is EvaMapping.POINTER:
            try:
                owner_rid, record = self.record_of(domain_surr,
                                                   canonical.owner_name)
            except IntegrityError:
                return False
            stored = record.get(info.ptr_field, NULL)
            if is_null(stored):
                return False
            pointers = list(stored)
            match = next((p for p in pointers if p[0] == range_surr), None)
            if match is None:
                return False
            pointers.remove(match)
            self._write_field(domain_surr, canonical.owner_name,
                              info.ptr_field,
                              tuple(pointers) if pointers else NULL)
            info.ptr_reverse.delete(range_surr, owner_rid)
            self.transactions.record_undo(
                lambda: info.ptr_reverse.insert(range_surr, owner_rid))
            info.instance_count -= 1
            return True
        with info.file.latch:
            for rid in info.forward.lookup((info.rel_id, domain_surr)):
                _, record = info.file.read(rid)
                if record["surr2"] != range_surr:
                    continue
                info.file.delete(rid)
                info.forward.delete((info.rel_id, domain_surr), rid)
                info.reverse.delete((info.rel_id, range_surr), rid)
                info.instance_count -= 1

                def undo():
                    # Restore at the SAME RID: a compensation that
                    # re-inserts elsewhere would duplicate the instance
                    # when crash recovery also restores the original slot
                    # from the log.
                    with info.file.latch:
                        info.file.undelete(rid, info.format_id,
                                           {"surr1": domain_surr,
                                            "rel": info.rel_id,
                                            "surr2": range_surr})
                        info.forward.insert((info.rel_id, domain_surr), rid)
                        info.reverse.insert((info.rel_id, range_surr), rid)
                        info.instance_count += 1
                self.transactions.record_undo(undo)
                return True
        return False

    def _require_role(self, surrogate: int, class_name: str) -> None:
        if not self.has_role(surrogate, class_name):
            raise IntegrityError(
                f"entity {surrogate} is not a member of {class_name!r}")

    # ------------------------------------------------------------------- scans

    def scan_class(self, class_name: str) -> Iterator[int]:
        """All surrogates with the given role, in block (physical) order.

        Note that scanning a class in a shared variable-format unit visits
        every block of the hierarchy's unit — the space/scan trade-off of
        the merged mapping.
        """
        class_name = canon(class_name)
        record_file = self._class_file[class_name]
        format_id = self._class_format[class_name]
        snap = self.current_snapshot()
        if snap is not None:
            # Scan physically FIRST, then fold the membership deltas:
            # writers stage before mutating, so any change racing the
            # scan is already in the fold when we capture it.
            try:
                physical = [record["surrogate"]
                            for _, _, record in record_file.scan(format_id)]
            except Exception:   # a racing writer reshaped the unit; retry
                physical = [record["surrogate"]
                            for _, _, record in record_file.scan(format_id)]
            for surrogate in self.versions.visible_members(snap, class_name,
                                                           physical):
                yield surrogate
            return
        for _, _, record in record_file.scan(format_id):
            yield record["surrogate"]

    def class_count(self, class_name: str) -> int:
        class_name = canon(class_name)
        snap = self.current_snapshot()
        if snap is not None \
                and not self.versions.class_clean(snap, (class_name,)):
            return sum(1 for _ in self.scan_class(class_name))
        return self._surrogate_index[class_name].entries

    def find_by_dva(self, class_name: str, attr_name: str, value
                    ) -> List[int]:
        """Entities of ``class_name`` whose DVA equals ``value``; uses a
        unique or value index when one exists, else scans the class."""
        class_name = canon(class_name)
        sim_class = self.schema.get_class(class_name)
        attr = sim_class.attribute(attr_name)
        owner = canon(attr.owner_name)
        snap = self.current_snapshot()
        if snap is not None:
            classes = ((owner,) if owner == class_name
                       else (owner, class_name))
            if self.versions.class_clean(snap, classes):
                # Index fast path with a post-hoc clean re-check: a writer
                # dirtying the class mid-probe forces the versioned scan.
                try:
                    result = self._find_by_dva_physical(class_name, owner,
                                                        attr, value)
                except Exception:
                    result = None
                if result is not None \
                        and self.versions.class_clean(snap, classes):
                    return result
            return [surrogate for surrogate in self.scan_class(class_name)
                    if self.read_dva(surrogate, attr) == value]
        return self._find_by_dva_physical(class_name, owner, attr, value)

    def _find_by_dva_physical(self, class_name: str, owner: str, attr,
                              value) -> List[int]:
        index = (self._unique_index.get((owner, attr.name))
                 or self._value_index.get((owner, attr.name)))
        if index is not None:
            record_file = self._class_file[owner]
            surrogates = []
            for rid in index.lookup(value):
                _, record = record_file.read(rid)
                surrogates.append(record["surrogate"])
            # Restrict to the queried class when it differs from the owner.
            if owner != class_name:
                surrogates = [s for s in surrogates
                              if self.has_role(s, class_name)]
            return surrogates
        results = []
        for surrogate in self.scan_class(class_name):
            if self.read_dva(surrogate, attr) == value:
                results.append(surrogate)
        return results

    def find_by_dva_range(self, class_name: str, attr_name: str,
                          low=None, high=None, include_low: bool = True,
                          include_high: bool = True) -> List[int]:
        """Entities of ``class_name`` whose DVA falls inside the given
        bounds, served by an *ordered* value index (NULLs never match a
        range; an open bound is None)."""
        class_name = canon(class_name)
        sim_class = self.schema.get_class(class_name)
        attr = sim_class.attribute(attr_name)
        owner = canon(attr.owner_name)
        index = self._value_index.get((owner, attr.name))
        if index is None or index.kind != "ordered":
            raise CatalogError(
                f"no ordered index on {class_name}.{attr_name}")
        snap = self.current_snapshot()
        if snap is not None:
            classes = ((owner,) if owner == class_name
                       else (owner, class_name))
            if self.versions.class_clean(snap, classes):
                try:
                    result = self._range_physical(class_name, owner, index,
                                                  low, high, include_low,
                                                  include_high)
                except Exception:
                    result = None
                if result is not None \
                        and self.versions.class_clean(snap, classes):
                    return result
            return [surrogate for surrogate in self.scan_class(class_name)
                    if _in_range(self.read_dva(surrogate, attr), low, high,
                                 include_low, include_high)]
        return self._range_physical(class_name, owner, index, low, high,
                                    include_low, include_high)

    def _range_physical(self, class_name: str, owner: str, index, low, high,
                        include_low: bool, include_high: bool) -> List[int]:
        record_file = self._class_file[owner]
        surrogates = []
        for _key, rid in index.range(low, high, include_low, include_high):
            _, record = record_file.read(rid)
            surrogates.append(record["surrogate"])
        if owner != class_name:
            surrogates = [s for s in surrogates
                          if self.has_role(s, class_name)]
        return surrogates

    def has_index_on(self, class_name: str, attr_name: str) -> bool:
        sim_class = self.schema.get_class(canon(class_name))
        attr = sim_class.attribute(attr_name)
        owner = canon(attr.owner_name)
        return ((owner, attr.name) in self._unique_index
                or (owner, attr.name) in self._value_index)

    def has_ordered_index_on(self, class_name: str, attr_name: str) -> bool:
        """True when an *ordered* value index can serve range predicates
        on this DVA (the ``select_entities`` range fast path)."""
        sim_class = self.schema.get_class(canon(class_name))
        attr = sim_class.attribute(attr_name)
        owner = canon(attr.owner_name)
        index = self._value_index.get((owner, attr.name))
        return index is not None and index.kind == "ordered"

    # -------------------------------------------------------------- statistics

    def relationship_cardinality(self, eva: EntityValuedAttribute) -> int:
        return self.eva_info(eva).instance_count

    def avg_fanout(self, eva: EntityValuedAttribute) -> float:
        """Average number of targets per source entity for this EVA side."""
        info = self.eva_info(eva)
        side_class = canon(eva.owner_name)
        population = max(1, self.class_count(side_class))
        return info.instance_count / population

    def blocking_factor(self, class_name: str) -> int:
        class_name = canon(class_name)
        return self._class_file[class_name].blocking_factor(
            self._class_format[class_name])

    def class_block_count(self, class_name: str) -> int:
        return self._class_file[canon(class_name)].block_count

    def io_stats(self):
        return self.pool.stats

    def reset_io_stats(self) -> None:
        self.pool.stats.reset()
        self.disk.stats.reset()

    def cold_cache(self) -> None:
        """Flush and invalidate the buffer pool and the read-path caches
        (for cold-run benchmarks and deterministic I/O accounting)."""
        self.pool.invalidate()
        self.read_cache.clear()

    # ------------------------------------------------------- fault injection

    def install_faults(self, injector: Optional[FaultInjector] = None,
                       seed: int = 0) -> FaultInjector:
        """Wire a :class:`FaultInjector` into the disk and the WAL.

        Pass an injector with an armed plan, or let this create a fresh
        seeded one to arm afterwards.  Returns the installed injector."""
        if injector is None:
            injector = FaultInjector(seed=seed)
        self.faults = injector
        self.disk.faults = injector
        self.wal.faults = injector
        return injector

    # --------------------------------------------------------- crash recovery

    def simulate_crash(self) -> dict:
        """Lose all volatile state (buffer pool, indexes, open transaction),
        then recover from the disk image and the durable log prefix.

        Returns recovery statistics.  Durability guarantees apply to
        transactional work: COMMIT flushes data pages and then forces a
        commit record, so committed statements survive; in-flight
        transactions are undone from the log's before-images;
        auto-committed Mapper-level calls that were never flushed are
        lost consistently.

        Re-runnable: if a fault injector kills the machine *during*
        recovery, calling this again reboots the device and re-runs the
        whole pass, which converges to the same disk image (undo applies
        absolute before-images in a fixed order, the rebuild is a pure
        function of the disk, and nothing appends to the log until the
        final checkpoint).
        """
        self.wal.crash()
        if self.faults is not None:
            self.faults.reboot()
        return self.recover()

    def recover(self) -> dict:
        """The recovery pass proper: undo losers, rebuild volatile state,
        then checkpoint the log.  Assumes ``wal.crash()`` has already
        established the durable prefix (``simulate_crash`` does both)."""
        formats_by_file = {f.file_id: f.formats for f in self._files.values()}
        undone = undo_losers(self.wal, self.disk, formats_by_file,
                             retry=self.retry)
        self._rebuild_volatile()
        checkpoint_lsn = self.wal.checkpoint()
        return {"undone_slots": undone, "checkpoint_lsn": checkpoint_lsn,
                "transient_retries": self.retry.retries}

    def _rebuild_volatile(self) -> None:
        """Reconstruct the buffer pool, file metadata, every index, the
        sequence counters and the surrogate generator from the disk image.
        (A real system checkpoints these; rebuilding by scan is the
        simulator's equivalent and also validates that the disk image is
        self-describing.)"""
        self.writes.rollback()
        self.pool = BufferPool(self.disk, self.design.pool_capacity)
        self.pool.wal = self.wal
        self.pool.retry = self.retry
        # Seed the fresh manager's id counter past any id the durable log
        # still mentions, so post-recovery transactions can't collide with
        # logged ones during the window before the checkpoint truncates.
        logged = [r.txn_id for r in self.wal.durable_records()
                  if r.txn_id is not None]
        self.transactions = TransactionManager(
            self.pool, wal=self.wal, start_after=max(logged, default=0))
        self.transactions.invalidation_hooks.append(self.writes.rollback)
        # Versions and snapshots are volatile; the epoch stays monotonic.
        self.versions.reset()
        self.transactions.commit_hooks.append(self.versions.commit)
        self.transactions.abort_hooks.append(self.versions.abort)
        for record_file in self._files.values():
            record_file.pool = self.pool
            record_file.txn_context = self.transactions.txn_context
            record_file.rebuild_metadata(self.disk, retry=self.retry)

        kind = self.design.surrogate_key_kind.value
        for class_name in self._surrogate_index:
            self._surrogate_index[class_name] = make_index(
                kind, f"surr--{class_name}", unique=True)
        for key in self._unique_index:
            self._unique_index[key] = HashIndex(
                f"uniq--{key[0]}--{key[1]}", unique=True)
        for key in self._value_index:
            self._value_index[key] = make_index(
                self.design.value_index_kind(key[0], key[1]),
                f"val--{key[0]}--{key[1]}")
        for key in self._mvdva_index:
            self._mvdva_index[key] = HashIndex(f"mvidx--{key[0]}--{key[1]}")
        self._mvdva_seq = {}
        for info in self._eva_info.values():
            info.instance_count = 0
            if info.forward is not None:
                info.forward = HashIndex(info.forward.name)
                info.reverse = HashIndex(info.reverse.name)
            if info.fk_reverse is not None:
                info.fk_reverse = HashIndex(info.fk_reverse.name)
            if info.ptr_reverse is not None:
                info.ptr_reverse = HashIndex(info.ptr_reverse.name)

        max_surrogate = 0
        for class_name, record_file in self._class_file.items():
            format_id = self._class_format[class_name]
            for rid, _, record in record_file.scan(format_id):
                surrogate = record["surrogate"]
                max_surrogate = max(max_surrogate, surrogate)
                self._surrogate_index[class_name].insert(surrogate, rid)
                for (cls, attr_name), index in self._unique_index.items():
                    if cls == class_name and not is_null(record.get(attr_name)):
                        index.insert(record[attr_name], rid)
                for (cls, attr_name), index in self._value_index.items():
                    if cls == class_name and not is_null(record.get(attr_name)):
                        index.insert(record[attr_name], rid)

        for info in self._eva_info.values():
            if info.fk_field is not None:
                holder = info.fk_eva.owner_name
                format_id = self._class_format[holder]
                for rid, _, record in self._class_file[holder].scan(format_id):
                    value = record.get(info.fk_field)
                    if not is_null(value):
                        info.fk_reverse.insert(value, rid)
                        info.instance_count += 1
            elif info.ptr_field is not None:
                owner = info.canonical.owner_name
                format_id = self._class_format[owner]
                for rid, _, record in self._class_file[owner].scan(format_id):
                    stored = record.get(info.ptr_field)
                    if is_null(stored):
                        continue
                    for target_surr, _block, _slot in stored:
                        info.ptr_reverse.insert(target_surr, rid)
                        info.instance_count += 1
            else:
                for rid, _, record in info.file.scan(info.format_id):
                    if record["rel"] != info.rel_id:
                        continue
                    info.forward.insert((info.rel_id, record["surr1"]), rid)
                    info.reverse.insert((info.rel_id, record["surr2"]), rid)
                    info.instance_count += 1

        for key, record_file in self._mvdva_file.items():
            format_id = self._mvdva_format[key]
            for rid, _, record in record_file.scan(format_id):
                owner = record["owner"]
                self._mvdva_index[key].insert(owner, rid)
                seq_key = (key[0], key[1], owner)
                self._mvdva_seq[seq_key] = max(
                    self._mvdva_seq.get(seq_key, 0), record["seq"])

        self._next_surrogate = max_surrogate + 1

    # ---------------------------------------------------------- consistency

    def check(self, constraints: bool = True):
        """Run the semantic consistency checker over the physical state;
        returns a :class:`repro.checker.CheckReport` (see that module)."""
        from repro.checker import check_store
        return check_store(self, constraints=constraints)

    def storage_statistics(self) -> dict:
        """Durability-side counters: WAL, retries, injected faults."""
        stats = {
            "wal_records": len(self.wal),
            "wal_forces": self.wal.forces,
            "wal_checkpoints": self.wal.checkpoints,
            "commits": self.transactions.commits,
            "aborts": self.transactions.aborts,
            "retry": self.retry.statistics(),
            "mvcc": self.versions.statistics(),
        }
        if self.faults is not None:
            stats["faults"] = self.faults.statistics()
        return stats

    def __repr__(self):
        return (f"<MapperStore {self.schema.name}: "
                f"{len(self._class_file)} class units, "
                f"{len(self._eva_info)} EVA pairs>")
