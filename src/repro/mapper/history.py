"""Temporal data: attribute and relationship history (paper §6).

The paper lists "temporal data" among SIM's work-in-progress extensions
without a design.  We provide the natural minimal semantics over this
substrate: an opt-in, in-memory change journal with a *logical clock*
(one tick per DML statement), supporting

* per-attribute history of an entity — every (tick, old, new) transition;
* as-of reconstruction — the value of a DVA, MV DVA or EVA target set as
  it stood after any past tick, rebuilt by inverting newer events;
* role history — when an entity acquired or lost each class role.

The journal is volatile observability state (like the indexes, it does
not survive :meth:`~repro.mapper.store.MapperStore.simulate_crash`), and
ticks are deterministic, so tests can assert exact histories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.naming import canon


@dataclass(frozen=True)
class ChangeEvent:
    """One journal entry.

    ``kind``: "set" (single-valued DVA: old -> new), "include"/"exclude"
    (MV DVA value or EVA target), "role+"/"role-" (class membership).
    """

    tick: int
    kind: str
    old: object = None
    new: object = None

    def describe(self) -> str:
        if self.kind == "set":
            return f"t{self.tick}: {self.old!r} -> {self.new!r}"
        if self.kind == "include":
            return f"t{self.tick}: include {self.new!r}"
        if self.kind == "exclude":
            return f"t{self.tick}: exclude {self.old!r}"
        return f"t{self.tick}: {self.kind} {self.new}"


class HistoryJournal:
    """The change journal for one store."""

    def __init__(self):
        self.clock = 0
        #: (surrogate, attr name) -> events, oldest first
        self._attribute_events: Dict[Tuple[int, str], List[ChangeEvent]] = {}
        #: surrogate -> role events
        self._role_events: Dict[int, List[ChangeEvent]] = {}

    def tick(self) -> int:
        """Advance the logical clock (one DML statement boundary)."""
        self.clock += 1
        return self.clock

    # -- Recording ---------------------------------------------------------------

    def record_set(self, surrogate: int, attr_name: str, old, new) -> None:
        self._attribute_events.setdefault(
            (surrogate, canon(attr_name)), []).append(
            ChangeEvent(self.clock, "set", _freeze(old), _freeze(new)))

    def record_include(self, surrogate: int, attr_name: str, value) -> None:
        self._attribute_events.setdefault(
            (surrogate, canon(attr_name)), []).append(
            ChangeEvent(self.clock, "include", None, _freeze(value)))

    def record_exclude(self, surrogate: int, attr_name: str, value) -> None:
        self._attribute_events.setdefault(
            (surrogate, canon(attr_name)), []).append(
            ChangeEvent(self.clock, "exclude", _freeze(value), None))

    def record_role(self, surrogate: int, class_name: str,
                    acquired: bool) -> None:
        kind = "role+" if acquired else "role-"
        self._role_events.setdefault(surrogate, []).append(
            ChangeEvent(self.clock, kind, new=canon(class_name)))

    # -- Reading -----------------------------------------------------------------

    def attribute_history(self, surrogate: int,
                          attr_name: str) -> List[ChangeEvent]:
        return list(self._attribute_events.get(
            (surrogate, canon(attr_name)), ()))

    def role_history(self, surrogate: int) -> List[ChangeEvent]:
        return list(self._role_events.get(surrogate, ()))

    def scalar_as_of(self, surrogate: int, attr_name: str, tick: int,
                     current):
        """The single-valued DVA as it stood at the end of ``tick``."""
        value = current
        for event in reversed(self.attribute_history(surrogate, attr_name)):
            if event.tick <= tick:
                break
            value = event.old
        return value

    def collection_as_of(self, surrogate: int, attr_name: str, tick: int,
                         current) -> List:
        """An MV DVA's values / an EVA's targets at the end of ``tick``.

        Replays newer events in reverse: undoing an include removes one
        occurrence; undoing an exclude re-adds it.
        """
        values = list(current)
        for event in reversed(self.attribute_history(surrogate, attr_name)):
            if event.tick <= tick:
                break
            if event.kind == "include":
                if event.new in values:
                    values.remove(event.new)
            elif event.kind == "exclude":
                values.append(event.old)
            elif event.kind == "set":
                values = list(event.old) if event.old else []
        return values

    def had_role_at(self, surrogate: int, class_name: str, tick: int,
                    current: bool) -> bool:
        held = current
        for event in reversed(self.role_history(surrogate)):
            if event.tick <= tick:
                break
            if event.new == canon(class_name):
                held = event.kind == "role-"
        return held

    def clear(self) -> None:
        self._attribute_events.clear()
        self._role_events.clear()


def _freeze(value):
    if isinstance(value, list):
        return tuple(value)
    return value
