"""The LUC Mapper (paper §5.1–§5.2).

"The LUC Mapper is a key module of SIM's implementation.  It extends the
capabilities of any underlying physical or logical data source and
presents a uniform, simplified view of data and operations associated
with it."

This package provides:

* the LUC model — Logical Underlying Components and the three relationship
  flavours (class–subclass links, MV-DVA links, EVA links)
  (:mod:`repro.mapper.luc`);
* the standard translation of a SIM schema into a LUC schema
  (:mod:`repro.mapper.translate`);
* physical mapping options — variable-format records for tree
  hierarchies, arrays vs. separate units for MV DVAs, foreign-key /
  common-structure / dedicated / clustered / pointer EVA mappings, and
  surrogate key kinds (:mod:`repro.mapper.physical`);
* the runtime store implementing entity/attribute/relationship operations
  with structural-integrity maintenance over the storage substrate
  (:mod:`repro.mapper.store`).
"""

from repro.mapper.luc import LUC, LUCRelationship, LUCSchema
from repro.mapper.translate import translate_schema
from repro.mapper.physical import (
    EvaMapping,
    HierarchyMapping,
    MvDvaMapping,
    PhysicalDesign,
    SurrogateKeyKind,
)
from repro.mapper.store import MapperStore
from repro.mapper.cursors import (
    LUCCursor,
    RelationshipCursor,
    open_luc_cursor,
    open_relationship_cursor,
)
from repro.mapper.history import ChangeEvent, HistoryJournal

__all__ = [
    "LUC",
    "LUCRelationship",
    "LUCSchema",
    "translate_schema",
    "EvaMapping",
    "HierarchyMapping",
    "MvDvaMapping",
    "PhysicalDesign",
    "SurrogateKeyKind",
    "MapperStore",
    "LUCCursor",
    "RelationshipCursor",
    "open_luc_cursor",
    "open_relationship_cursor",
    "ChangeEvent",
    "HistoryJournal",
]
