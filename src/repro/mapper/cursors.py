"""LUC and relationship cursors (paper §5.1).

"A cursor can be opened on a LUC or on a relationship and it delivers one
record of the LUC at a time.  Relationship cursors deliver one record of
the range LUC and the Mapper assumes the responsibility of traversing a
relationship, no matter how it is physically mapped."

These cursors are the formal Mapper interface the paper's Query Driver
consumes; the engine in this reproduction mostly calls the store's
entity-level operations directly, but the cursor layer is exposed for
host programs and tests, and behaves identically across every physical
mapping.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.errors import SimError
from repro.naming import canon


class LUCCursor:
    """Forward-only cursor over one class LUC's records.

    Each delivered record is the LUC's flat view: the surrogate plus the
    class's immediate single-valued DVAs (exactly the fields the standard
    translation gives the LUC).
    """

    def __init__(self, store, class_name: str):
        self.store = store
        self.class_name = canon(class_name)
        sim_class = store.schema.get_class(self.class_name)
        self._field_attrs = [
            attr for attr in sim_class.immediate_attributes.values()
            if not attr.is_eva and not attr.is_subrole
            and not attr.is_surrogate and attr.single_valued]
        self._iterator: Optional[Iterator[int]] = None
        self.closed = False

    def open(self) -> "LUCCursor":
        self._iterator = self.store.scan_class(self.class_name)
        self.closed = False
        return self

    def fetch(self) -> Optional[Dict[str, object]]:
        """The next LUC record, or None at end of extent."""
        if self.closed:
            raise SimError("cursor is closed")
        if self._iterator is None:
            self.open()
        try:
            surrogate = next(self._iterator)
        except StopIteration:
            return None
        record = {"surrogate": surrogate}
        for attr in self._field_attrs:
            record[attr.name] = self.store.read_dva(surrogate, attr)
        return record

    def close(self) -> None:
        self.closed = True
        self._iterator = None

    def __iter__(self):
        while True:
            record = self.fetch()
            if record is None:
                return
            yield record

    def __enter__(self):
        return self.open()

    def __exit__(self, *exc_info):
        self.close()
        return False


class RelationshipCursor:
    """Cursor over one relationship occurrence: delivers range-LUC records.

    Opened from a source entity over an EVA (either side of the pair); the
    physical mapping — foreign key, common structure, dedicated,
    clustered, pointer — is invisible, per the paper's contract.
    """

    def __init__(self, store, source_surrogate: int, eva):
        self.store = store
        self.source = source_surrogate
        self.eva = eva
        range_class = store.schema.get_class(eva.range_class_name)
        self._field_attrs = [
            attr for attr in range_class.immediate_attributes.values()
            if not attr.is_eva and not attr.is_subrole
            and not attr.is_surrogate and attr.single_valued]
        self._targets: Optional[Iterator[int]] = None
        self.closed = False

    def open(self) -> "RelationshipCursor":
        self._targets = iter(self.store.eva_targets(self.source, self.eva))
        self.closed = False
        return self

    def fetch(self) -> Optional[Dict[str, object]]:
        """The next range record, or None when the occurrence is done."""
        if self.closed:
            raise SimError("cursor is closed")
        if self._targets is None:
            self.open()
        try:
            target = next(self._targets)
        except StopIteration:
            return None
        record = {"surrogate": target}
        for attr in self._field_attrs:
            record[attr.name] = self.store.read_dva(target, attr)
        return record

    def close(self) -> None:
        self.closed = True
        self._targets = None

    def __iter__(self):
        while True:
            record = self.fetch()
            if record is None:
                return
            yield record

    def __enter__(self):
        return self.open()

    def __exit__(self, *exc_info):
        self.close()
        return False


def open_luc_cursor(store, class_name: str) -> LUCCursor:
    """Open a cursor on a class LUC (paper §5.1)."""
    return LUCCursor(store, class_name).open()


def open_relationship_cursor(store, source_surrogate: int,
                             eva_owner: str,
                             eva_name: str) -> RelationshipCursor:
    """Open a cursor on a relationship occurrence from one entity."""
    eva = store.schema.get_class(eva_owner).attribute(eva_name)
    if not eva.is_eva:
        raise SimError(f"{eva_owner}.{eva_name} is not an EVA")
    return RelationshipCursor(store, source_surrogate, eva).open()
