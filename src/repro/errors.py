"""Exception hierarchy for the SIM reproduction.

Every error raised by the library derives from :class:`SimError`, so client
code can catch one base class.  The sub-hierarchy mirrors the phases of the
system: schema definition, DML parsing, semantic analysis, integrity
enforcement, storage, and execution.
"""

from __future__ import annotations


class SimError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(SimError):
    """Invalid schema definition (bad class graph, attribute conflict...)."""


class TypeDefinitionError(SchemaError):
    """Invalid type definition (empty range, bad precision...)."""


class DDLSyntaxError(SchemaError):
    """The DDL text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class DMLError(SimError):
    """Base class for DML (query language) errors."""


class DMLSyntaxError(DMLError):
    """The DML text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class QualificationError(DMLError):
    """An attribute could not be qualified to a perspective class.

    Raised when a qualification chain names an unknown attribute, when a
    shorthand qualification is ambiguous, or when an ``AS`` role conversion
    targets a class outside the generalization hierarchy.
    """


class BindingError(DMLError):
    """A range variable reference could not be resolved."""


class TypeMismatchError(DMLError):
    """An expression combines operands of incompatible types."""


class IntegrityError(SimError):
    """A DML action would violate schema-defined integrity."""


class ConstraintViolation(IntegrityError):
    """A VERIFY assertion failed.  Carries the assertion's ELSE message."""

    def __init__(self, constraint_name: str, message: str):
        self.constraint_name = constraint_name
        self.user_message = message
        super().__init__(f"verify {constraint_name} failed: {message}")


class UniquenessViolation(IntegrityError):
    """A UNIQUE attribute would receive a duplicate value."""


class RequiredViolation(IntegrityError):
    """A REQUIRED attribute would be left null."""


class CardinalityViolation(IntegrityError):
    """An MV attribute would exceed its MAX bound."""


class StorageError(SimError):
    """Low-level storage failure (bad block, missing record...)."""


class TransientStorageError(StorageError):
    """A storage operation failed but may succeed if retried (simulated
    controller hiccup).  The Mapper's retry policy retries these with
    backoff; all other storage errors are treated as permanent."""


class InjectedCrash(StorageError):
    """The fault injector killed the simulated machine mid-operation.

    Raised by the fault-injection harness when a crash trigger fires; the
    device stays dead (every further I/O re-raises) until
    :meth:`~repro.storage.faults.FaultInjector.reboot`, which
    :meth:`~repro.mapper.store.MapperStore.simulate_crash` calls before
    recovery.  Test harnesses catch this to drive crash-recovery cycles.
    """


class TransactionError(StorageError):
    """Invalid transaction state transition."""


class ExecutionError(SimError):
    """Runtime failure while executing a query plan."""


class CatalogError(SimError):
    """Directory/catalog lookup failure (unknown class, attribute...)."""
