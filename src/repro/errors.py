"""Exception hierarchy for the SIM reproduction.

Every error raised by the library derives from :class:`SimError`, so client
code can catch one base class.  The sub-hierarchy mirrors the phases of the
system: schema definition, DML parsing, semantic analysis, integrity
enforcement, storage, and execution.
"""

from __future__ import annotations


class SimError(Exception):
    """Base class for all errors raised by this library.

    ``diagnostic_code`` carries the stable ``SIM***`` rule code when the
    error corresponds to a rule of the static-analysis catalog
    (:mod:`repro.analysis`); it is ``None`` for purely runtime failures.
    """

    diagnostic_code = None

    def with_code(self, code: str) -> "SimError":
        """Tag this error with a static-analysis rule code (chaining)."""
        self.diagnostic_code = code
        return self


class SchemaError(SimError):
    """Invalid schema definition (bad class graph, attribute conflict...)."""


class TypeDefinitionError(SchemaError):
    """Invalid type definition (empty range, bad precision...)."""


class DDLSyntaxError(SchemaError):
    """The DDL text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class DMLError(SimError):
    """Base class for DML (query language) errors."""


class DMLSyntaxError(DMLError):
    """The DML text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class QualificationError(DMLError):
    """An attribute could not be qualified to a perspective class.

    Raised when a qualification chain names an unknown attribute, when a
    shorthand qualification is ambiguous, or when an ``AS`` role conversion
    targets a class outside the generalization hierarchy.
    """


class BindingError(DMLError):
    """A range variable reference could not be resolved."""


class TypeMismatchError(DMLError):
    """An expression combines operands of incompatible types."""


class StaticAnalysisError(SimError):
    """Compile-time diagnostics with severity ``error`` were found.

    Raised by :meth:`repro.database.Database.compile` and by the execute
    path when the static analyzers (:mod:`repro.analysis`) reject a
    statement before any data is touched.  ``diagnostics`` holds the full
    :class:`repro.analysis.diagnostics.Diagnostic` list (warnings too).
    """

    def __init__(self, message: str, diagnostics=()):
        self.diagnostics = list(diagnostics)
        super().__init__(message)


class StaticTypeError(TypeMismatchError, StaticAnalysisError):
    """A statically detected type error (EVA/DVA misuse, incomparable
    operand families...).  Subclasses :class:`TypeMismatchError` so code
    catching the runtime type error also catches the compile-time one."""

    def __init__(self, message: str, diagnostics=()):
        self.diagnostics = list(diagnostics)
        TypeMismatchError.__init__(self, message)


class IntegrityError(SimError):
    """A DML action would violate schema-defined integrity."""


class ConstraintViolation(IntegrityError):
    """A VERIFY assertion failed.  Carries the assertion's ELSE message."""

    def __init__(self, constraint_name: str, message: str):
        self.constraint_name = constraint_name
        self.user_message = message
        super().__init__(f"verify {constraint_name} failed: {message}")


class StaticUpdateError(IntegrityError, StaticAnalysisError):
    """A statically detected update error (assignment to a system
    attribute, INCLUDE on a single-valued attribute...).  Subclasses
    :class:`IntegrityError` so code catching the runtime enforcement
    error also catches the compile-time one."""

    def __init__(self, message: str, diagnostics=()):
        self.diagnostics = list(diagnostics)
        IntegrityError.__init__(self, message)


class UniquenessViolation(IntegrityError):
    """A UNIQUE attribute would receive a duplicate value."""


class RequiredViolation(IntegrityError):
    """A REQUIRED attribute would be left null."""


class CardinalityViolation(IntegrityError):
    """An MV attribute would exceed its MAX bound."""


class StorageError(SimError):
    """Low-level storage failure (bad block, missing record...)."""


class TransientStorageError(StorageError):
    """A storage operation failed but may succeed if retried (simulated
    controller hiccup).  The Mapper's retry policy retries these with
    backoff; all other storage errors are treated as permanent."""


class InjectedCrash(StorageError):
    """The fault injector killed the simulated machine mid-operation.

    Raised by the fault-injection harness when a crash trigger fires; the
    device stays dead (every further I/O re-raises) until
    :meth:`~repro.storage.faults.FaultInjector.reboot`, which
    :meth:`~repro.mapper.store.MapperStore.simulate_crash` calls before
    recovery.  Test harnesses catch this to drive crash-recovery cycles.
    """


class TransactionError(StorageError):
    """Invalid transaction state transition."""


class ExecutionError(SimError):
    """Runtime failure while executing a query plan."""


class ServerOverloaded(SimError):
    """The network server shed this statement: every session slot is
    busy and the admission queue is full.  The statement did not run;
    the client should back off and retry."""


class PlanVerificationError(StaticAnalysisError):
    """The post-optimization plan verifier rejected a chosen plan.

    Raised *before* execution (fail closed) when the structural contract
    between the labelled query tree and the optimizer's plan is broken:
    a TYPE 2 existential subtree on the enumeration spine, a TYPE 3
    target-only branch used in selection, or a range variable bound more
    or less than exactly once.
    """


class CatalogError(SimError):
    """Directory/catalog lookup failure (unknown class, attribute...)."""
