"""Saving and opening databases as files.

The simulated disk lives in memory; this module gives it a life across
processes.  A saved database file carries:

* the schema, rendered to DDL (round-trippable, including the §6
  extensions: derived attributes, views, EVA ordering);
* the physical design choices, as a plain dictionary;
* the disk's block images and the durable write-ahead-log prefix;
* the surrogate high-water mark.

:func:`open_database` rebuilds everything volatile — buffer pool, every
index, free-space maps, sequence counters — by the same scan-and-rebuild
path crash recovery uses, so opening a file is literally a restart.

The format is Python pickle wrapped with a magic header and a format
version; it is a simulation artifact, not an interchange format.
"""

from __future__ import annotations

import pickle

from repro.errors import SimError, TransactionError

MAGIC = b"SIMREPRO"
VERSION = 1


def design_to_dict(design) -> dict:
    """Serializable description of a PhysicalDesign."""
    return {
        "block_size": design.block_size,
        "pool_capacity": design.pool_capacity,
        "surrogate_key_kind": design.surrogate_key_kind.value,
        "default_hierarchy": design.default_hierarchy.value,
        "hierarchy_overrides": {
            base: mapping.value
            for base, mapping in design._hierarchy_overrides.items()},
        "eva_overrides": {
            f"{owner}.{name}": mapping.value
            for (owner, name), mapping in design._eva_overrides.items()},
        "mvdva_overrides": {
            f"{owner}.{name}": mapping.value
            for (owner, name), mapping in design._mvdva_overrides.items()},
        "value_indexes": [f"{owner}.{name}"
                          for owner, name in design.value_indexes()],
        "value_index_kinds": {
            f"{owner}.{name}": kind
            for (owner, name), kind in design._value_index_kinds.items()},
    }


def design_from_dict(schema, spec: dict):
    """Rebuild a finalized PhysicalDesign from its dictionary form."""
    from repro.mapper.physical import (
        EvaMapping,
        HierarchyMapping,
        MvDvaMapping,
        PhysicalDesign,
        SurrogateKeyKind,
    )
    design = PhysicalDesign(
        schema,
        block_size=spec["block_size"],
        pool_capacity=spec["pool_capacity"],
        surrogate_key_kind=SurrogateKeyKind(spec["surrogate_key_kind"]),
        default_hierarchy=HierarchyMapping(spec["default_hierarchy"]))
    for base, mapping in spec["hierarchy_overrides"].items():
        design.override_hierarchy(base, HierarchyMapping(mapping))
    for key, mapping in spec["eva_overrides"].items():
        owner, name = key.split(".", 1)
        design.override_eva(owner, name, EvaMapping(mapping))
    for key, mapping in spec["mvdva_overrides"].items():
        owner, name = key.split(".", 1)
        design.override_mv_dva(owner, name, MvDvaMapping(mapping))
    kinds = spec.get("value_index_kinds", {})   # absent in older files
    for key in spec["value_indexes"]:
        owner, name = key.split(".", 1)
        design.add_value_index(owner, name, kind=kinds.get(key, "hash"))
    return design.finalize()


def save_database(database, path: str) -> None:
    """Persist a database to ``path``.

    Requires no open transaction; flushes all dirty pages first so the
    disk image is complete.
    """
    store = database.store
    if store.transactions.in_transaction():
        raise TransactionError(
            "commit or abort the open transaction before saving")
    store.pool.flush()
    store.wal.force()
    payload = {
        "version": VERSION,
        "ddl": database.schema.ddl(),
        "schema_name": database.schema.name,
        "design": design_to_dict(store.design),
        "disk_blocks": store.disk._blocks,
        "wal_records": store.wal.durable_records(),
        "constraint_mode": database.constraints.mode,
        "use_optimizer": database.use_optimizer,
        "rewrite": database.rewrite,
        "track_history": store.history is not None,
        # Declarations only: content is recomputed on open (a restart).
        "materializations": (store.materialized.specs()
                             if store.materialized is not None else []),
    }
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)


def open_database(path: str):
    """Open a database previously written by :func:`save_database`."""
    from repro.database import Database
    from repro.schema.ddl_parser import parse_ddl

    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise SimError(f"{path!r} is not a SIM database file")
        payload = pickle.load(handle)
    if payload.get("version") != VERSION:
        raise SimError(
            f"unsupported database file version {payload.get('version')}")

    schema = parse_ddl(payload["ddl"])
    schema.name = payload["schema_name"]
    design = design_from_dict(schema, payload["design"])
    database = Database(schema, design=design,
                        constraint_mode=payload["constraint_mode"],
                        use_optimizer=payload["use_optimizer"],
                        rewrite=payload.get("rewrite", True),
                        track_history=payload["track_history"])
    store = database.store
    store.disk._blocks = payload["disk_blocks"]
    for record in payload["wal_records"]:
        store.wal._records.append(record)
    store.wal._durable_upto = len(store.wal._records)
    if store.wal._records:
        store.wal._next_lsn = store.wal._records[-1].lsn + 1
    # Opening is a restart: recover (undoing any losers the file carried)
    # and rebuild all volatile state from the disk image.
    store.simulate_crash()
    # Re-declare materializations after recovery so their content is
    # rebuilt from the recovered physical state.
    for spec in payload.get("materializations", []):
        database.materialize(spec["name"], spec["kind"],
                             spec["class_name"], spec["eva_names"])
    return database
