"""Hierarchical span/event tracing across the Figure-1 layers.

A query's journey — Query Driver → Parser/Optimizer → Directory Manager →
LUC Mapper → DMSII substrate — is recorded as a tree of :class:`Span`
objects, one tree per statement.  Each span carries wall-clock timing,
free-form attributes, rare discrete *events* (fault retries, WAL forces,
cache invalidations) and cheap aggregated *counts* (records decoded,
cache hits, physical I/O) contributed by the layer that owned the span's
time.

The recorder is built to cost nothing when tracing is off:

* layers hold a ``trace`` attribute that is ``None`` by default, so the
  hot-path guard is a single ``is not None`` test with no allocation;
* when a :class:`TraceRecorder` is attached but ``enabled`` is False,
  every entry point returns before allocating anything.

Three surfaces consume the recording (see ISSUE/PR 4):

* ``Span.render()`` — the EXPLAIN ANALYZE view: the annotated query tree
  with per-node TYPE labels, estimated vs. actual cardinalities and
  per-layer timings (``ResultSet.trace`` / IQF ``.trace``);
* ``TraceRecorder.to_jsonl()`` — one JSON span tree per statement
  (``Database.trace_jsonl()`` / ``python -m repro trace``);
* :class:`~repro.perf.TraceHistograms` — per-layer latency and
  rows-per-node histograms fed as spans close.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.perf import TraceHistograms

#: spans deeper than this are recorded but rendered flat (defensive cap)
_RENDER_DEPTH_CAP = 24


class Span:
    """One timed region of one statement's journey through the layers."""

    __slots__ = ("name", "layer", "start", "end", "attrs", "counts",
                 "events", "children", "error")

    def __init__(self, name: str, layer: str, **attrs):
        self.name = name
        self.layer = layer
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.attrs: Dict[str, object] = attrs
        self.counts: Dict[str, int] = {}
        self.events: List[Dict[str, object]] = []
        self.children: List["Span"] = []
        self.error: Optional[str] = None

    # -- Introspection -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration_ms(self) -> float:
        end = self.end if self.end is not None else time.perf_counter()
        return (end - self.start) * 1000.0

    def find(self, name: str) -> Optional["Span"]:
        """First descendant span (depth-first) with the given name."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    # -- Serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "layer": self.layer,
            "duration_ms": round(self.duration_ms, 4),
        }
        if self.attrs:
            out["attrs"] = {k: _jsonable(v) for k, v in self.attrs.items()}
        if self.counts:
            out["counts"] = dict(self.counts)
        if self.events:
            out["events"] = [
                {k: _jsonable(v) for k, v in event.items()}
                for event in self.events]
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    # -- EXPLAIN ANALYZE rendering -------------------------------------------------

    def render(self) -> str:
        """The annotated-tree view of this span (EXPLAIN ANALYZE)."""
        lines: List[str] = []
        self._render_into(lines, 0)
        return "\n".join(lines)

    def _render_into(self, lines: List[str], depth: int) -> None:
        indent = "  " * min(depth, _RENDER_DEPTH_CAP)
        header = f"{indent}{self.name} [{self.layer}]"
        header += f"  {self.duration_ms:.3f} ms"
        decor = []
        for key, value in self.attrs.items():
            if key in ("nodes", "operators"):
                continue
            decor.append(f"{key}={_short(value)}")
        if self.error is not None:
            decor.append(f"error={self.error!r}")
        if decor:
            header += "  " + " ".join(decor)
        lines.append(header)
        for key in sorted(self.counts):
            lines.append(f"{indent}  · {key}: {self.counts[key]}")
        for event in self.events:
            inner = " ".join(f"{k}={_short(v)}" for k, v in event.items()
                             if k != "event")
            lines.append(f"{indent}  ! {event.get('event', '?')} {inner}")
        nodes = self.attrs.get("nodes")
        if isinstance(nodes, list):
            for record in nodes:
                lines.append(indent + "  " + _render_node(record))
        operators = self.attrs.get("operators")
        if isinstance(operators, list):
            for record in operators:
                lines.append(indent + "  " + _render_operator(record))
        for child in self.children:
            child._render_into(lines, depth + 1)

    def __repr__(self):
        state = f"{self.duration_ms:.3f} ms" if self.closed else "open"
        return f"<Span {self.name} [{self.layer}] {state}>"


def _render_node(record: Dict[str, object]) -> str:
    depth = int(record.get("depth", 0))
    est = record.get("est_rows")
    est_text = "est=?" if est is None else f"est={float(est):.1f}"
    return ("{pad}node {describe} [{label}]  {est} actual={actual} "
            "loops={loops}".format(
                pad="  " * depth,
                describe=record.get("describe", "?"),
                label=record.get("label", "?"),
                est=est_text,
                actual=record.get("actual_rows", 0),
                loops=record.get("loops", 0)))


def _render_operator(record: Dict[str, object]) -> str:
    """One line per physical operator (batched Volcano pipeline order)."""
    label = record.get("label")
    label_text = f" [{label}]" if label else ""
    est = record.get("est_rows")
    est_text = "" if est is None else f" est={float(est):.1f}"
    workers = record.get("workers")
    morsels = record.get("morsels")
    parallel_text = ""
    if workers is not None:
        parallel_text = f" workers={workers}"
        if morsels is not None:
            parallel_text += f" morsels={morsels}"
    return ("op {op}({detail}){label}  batches={batches} in={rows_in} "
            "out={rows_out}{est}{parallel}".format(
                op=record.get("op", "?"),
                detail=_short(record.get("detail", "")),
                label=label_text,
                batches=record.get("batches", 0),
                rows_in=record.get("rows_in", 0),
                rows_out=record.get("rows_out", 0),
                est=est_text,
                parallel=parallel_text))


def _short(value, limit: int = 60) -> str:
    text = str(value)
    return text if len(text) <= limit else text[:limit - 3] + "..."


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


class TraceRecorder:
    """Collects statement span trees; bounded, with per-layer histograms.

    The recorder keeps at most ``capacity`` completed statement roots
    (oldest dropped) plus a stack of currently open spans.  All entry
    points short-circuit when ``enabled`` is False, so an attached but
    disabled recorder costs one attribute load and one truth test.
    """

    def __init__(self, capacity: int = 256, enabled: bool = True):
        self.enabled = enabled
        self.capacity = capacity
        self.statements: deque = deque(maxlen=capacity)
        self.histograms = TraceHistograms()
        self._stack: List[Span] = []
        # Span open/close stays main-thread-only (the stack is not
        # shareable), but morsel workers *contribute* counts and events
        # to the span the dispatching thread holds open; the lock keeps
        # those read-modify-write merges exact.
        self._count_lock = threading.Lock()

    # -- Statement lifecycle -----------------------------------------------------

    def begin_statement(self, text: str) -> Optional[Span]:
        """Open a statement root span.  Any still-open statement is
        force-closed first (a defensive guarantee: no span leaks across
        statements, however the previous one ended)."""
        if not self.enabled:
            return None
        if self._stack:
            self.end_statement(error="superseded by next statement")
        root = Span("statement", "driver", text=text)
        self._stack.append(root)
        return root

    def end_statement(self, error: Optional[str] = None) -> Optional[Span]:
        """Close the statement root (and, defensively, every span still
        open under it), record it, feed the histograms."""
        if not self._stack:
            return None
        now = time.perf_counter()
        root = self._stack[0]
        # Close inner-out so durations stay nested.
        for span in reversed(self._stack):
            if span.end is None:
                span.end = now
                if error is not None and span.error is None:
                    span.error = error
                self.histograms.observe_latency(
                    span.layer, (now - span.start) * 1000.0)
        self._stack.clear()
        self.statements.append(root)
        return root

    # -- Spans and events ---------------------------------------------------------

    @contextmanager
    def span(self, name: str, layer: str, **attrs):
        """Open a child span under the current one.  With no statement
        open, an implicit root is created (and closed with the span) so
        direct engine use — sessions, update internals — still nests."""
        if not self.enabled:
            yield None
            return
        implicit_root = not self._stack
        if implicit_root:
            root = Span("statement", "driver", text=f"<{name}>")
            self._stack.append(root)
        span = Span(name, layer, **attrs)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            span.end = time.perf_counter()
            self.histograms.observe_latency(layer, span.duration_ms)
            if self._stack and self._stack[-1] is span:
                self._stack.pop()
            if implicit_root:
                self.end_statement(error=span.error)

    def event(self, name: str, **attrs) -> None:
        """A discrete occurrence on the current span (fault retry, WAL
        force, invalidation).  Dropped when no span is open."""
        if not self.enabled or not self._stack:
            return
        record: Dict[str, object] = {"event": name}
        record.update(attrs)
        with self._count_lock:
            if self._stack:
                self._stack[-1].events.append(record)

    def count(self, name: str, amount: int = 1) -> None:
        """Aggregate a cheap per-span counter (record decodes, cache
        hits, physical I/O).  Dropped when no span is open."""
        if not self.enabled or not self._stack:
            return
        with self._count_lock:
            if not self._stack:
                return
            counts = self._stack[-1].counts
            counts[name] = counts.get(name, 0) + amount

    # -- Introspection -----------------------------------------------------------

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def open_spans(self) -> int:
        """Number of spans still open — 0 between statements, always."""
        return len(self._stack)

    def last(self) -> Optional[Span]:
        return self.statements[-1] if self.statements else None

    def clear(self) -> None:
        self.statements.clear()
        self._stack.clear()
        self.histograms.reset()

    # -- Export --------------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per recorded statement, newline-delimited."""
        return "\n".join(
            json.dumps(span.to_dict(), sort_keys=True)
            for span in self.statements)

    def __repr__(self):
        state = "on" if self.enabled else "off"
        return (f"<TraceRecorder {state} statements={len(self.statements)} "
                f"open={len(self._stack)}>")


def attach_tracing(store, recorder: Optional[TraceRecorder] = None,
                   capacity: int = 256) -> TraceRecorder:
    """Wire a recorder into every layer of one Mapper store: the store
    itself (record decodes), its read cache, WAL, buffer pool (physical
    I/O) and retry policy (fault events).  Idempotent per store."""
    if recorder is None:
        recorder = TraceRecorder(capacity=capacity)
    store.trace = recorder
    store.read_cache.trace = recorder
    store.wal.trace = recorder
    store.pool.trace = recorder
    store.retry.trace = recorder
    return recorder


def detach_tracing(store) -> None:
    """Remove the recorder from every layer (back to zero overhead)."""
    store.trace = None
    store.read_cache.trace = None
    store.wal.trace = None
    store.pool.trace = None
    store.retry.trace = None
