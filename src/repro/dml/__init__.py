"""SIM DML: the English-like, non-procedural data language (paper §4).

The pipeline: :mod:`repro.dml.parser` turns text into the AST of
:mod:`repro.dml.ast`; :mod:`repro.dml.qualification` resolves every
qualification chain against the schema (including shorthand completion and
AS role conversion); :mod:`repro.dml.query_tree` applies the binding rules
to build the query tree QT with its TYPE 1/2/3 node labelling (§4.4–4.5),
which the engine then evaluates with the paper's nested-loop semantics.
"""

from repro.dml.ast import (
    Aggregate,
    Assignment,
    Binary,
    DeleteStatement,
    EntitySelector,
    InsertStatement,
    IsaTest,
    Literal,
    ModifyStatement,
    OrderItem,
    Path,
    PathStep,
    PerspectiveRef,
    Quantified,
    RetrieveQuery,
    TargetItem,
    Unary,
)
from repro.dml.parser import parse_dml, parse_expression
from repro.dml.qualification import Qualifier
from repro.dml.query_tree import QueryTree, QTNode, build_query_tree

__all__ = [
    "Aggregate",
    "Assignment",
    "Binary",
    "DeleteStatement",
    "EntitySelector",
    "InsertStatement",
    "IsaTest",
    "Literal",
    "ModifyStatement",
    "OrderItem",
    "Path",
    "PathStep",
    "PerspectiveRef",
    "Quantified",
    "RetrieveQuery",
    "TargetItem",
    "Unary",
    "parse_dml",
    "parse_expression",
    "Qualifier",
    "QueryTree",
    "QTNode",
    "build_query_tree",
]
