"""Recursive-descent parser for SIM DML.

Grammar (paper §4.3, §4.8, and the worked examples)::

    statement  := retrieve | insert | modify | delete
    retrieve   := [FROM perspectives] RETRIEVE [TABLE [DISTINCT] | STRUCTURE]
                  targets [ORDER BY orders] [WHERE expr]
    perspectives := class [var] {"," class [var]}
    targets    := target {"," target}
    target     := "(" expr {"," expr} ")" OF path   -- parenthetic factoring
                | expr
    insert     := INSERT class [FROM class WHERE expr]
                  ["(" assignments ")"]
    modify     := MODIFY class "(" assignments ")" [WHERE expr]
    delete     := DELETE class [WHERE expr]
    assignment := attr ":=" [INCLUDE|EXCLUDE] (selector | expr)
    selector   := name WITH "(" expr ")"

    expr       := or ; or := and {OR and} ; and := not {AND not}
    not        := [NOT] comparison
    comparison := additive [compop rhs] | additive ISA ident
    rhs        := quantified | additive
    quantified := (SOME|ALL|NO) "(" expr ")"
    additive   := multiplicative {("+"|"-") multiplicative}
    multiplicative := unary {("*"|"/") unary}
    unary      := ["-"] primary
    primary    := literal | aggregate | "(" expr ")" | path | func "(" args ")"
    path       := step {OF step}
    step       := [TRANSITIVE "("] [INVERSE "("] ident [")"] [")"]
                  [AS ident]
    aggregate  := (COUNT|SUM|AVG|MIN|MAX) [DISTINCT] "(" expr ")" {OF step}

Keywords are contextual (SIM has no reserved words): ``count`` is an
aggregate only when followed by ``(``, etc.
"""

from __future__ import annotations

from typing import List

from repro.errors import DMLSyntaxError
from repro.lexer import (
    DECIMAL,
    IDENT,
    NUMBER,
    STRING,
    SYMBOL,
    TokenStream,
    tokenize,
)
from repro.dml.ast import (
    Aggregate,
    Assignment,
    Binary,
    DeleteStatement,
    EntitySelector,
    FunctionCall,
    InsertStatement,
    IsaTest,
    Literal,
    ModifyStatement,
    OrderItem,
    Path,
    PathStep,
    PerspectiveRef,
    Quantified,
    RetrieveQuery,
    TargetItem,
    Unary,
)

_AGGREGATES = ("count", "sum", "avg", "min", "max")
_QUANTIFIERS = ("some", "all", "no")
_FUNCTIONS = ("abs", "length", "upper", "lower", "year", "month", "day")
_COMPARISONS = {"=": "=", "<": "<", ">": ">", "<=": "<=", ">=": ">=",
                "!=": "neq", "<>": "neq"}
#: identifiers that end a path chain when seen bare (clause keywords)
_CLAUSE_WORDS = frozenset((
    "retrieve", "from", "where", "order", "and", "or", "not", "isa",
    "like", "neq", "asc", "desc", "with", "include", "exclude", "by",
    "table", "structure", "distinct", "else", "of", "as",
))


def parse_dml(text: str):
    """Parse one DML statement; returns a statement AST node."""
    parser = _DMLParser(text)
    statement = parser.parse_statement()
    parser.expect_done()
    return statement


def parse_expression(text: str):
    """Parse a standalone selection expression (used for VERIFY assertions)."""
    parser = _DMLParser(text)
    expression = parser.parse_expr()
    parser.expect_done()
    return expression


class _DMLParser:
    def __init__(self, text: str):
        self.stream = TokenStream(tokenize(text, DMLSyntaxError),
                                  DMLSyntaxError)

    # -- Statements --------------------------------------------------------------

    def parse_statement(self):
        if self.stream.check_keyword("from", "retrieve"):
            return self.parse_retrieve()
        if self.stream.accept_keyword("insert"):
            return self.parse_insert()
        if self.stream.accept_keyword("modify"):
            return self.parse_modify()
        if self.stream.accept_keyword("delete"):
            return self.parse_delete()
        self.stream.fail("expected RETRIEVE, FROM, INSERT, MODIFY or DELETE")

    def expect_done(self):
        self.stream.accept_symbol(";")
        if not self.stream.at_end():
            self.stream.fail("unexpected trailing input")

    def parse_retrieve(self) -> RetrieveQuery:
        perspectives: List[PerspectiveRef] = []
        if self.stream.accept_keyword("from"):
            perspectives.append(self._perspective_ref())
            while self.stream.accept_symbol(","):
                perspectives.append(self._perspective_ref())
        self.stream.expect_keyword("retrieve")

        mode = "table"
        distinct = False
        if self.stream.accept_keyword("table"):
            if self.stream.accept_keyword("distinct"):
                distinct = True
        elif self.stream.accept_keyword("structure"):
            mode = "structure"

        targets = self._target_list()

        # §4.3 puts ORDER BY before WHERE; we accept either order.
        order_by: List[OrderItem] = []
        where = None
        while True:
            if not order_by and self.stream.accept_keyword("order"):
                self.stream.expect_keyword("by")
                order_by.append(self._order_item())
                while self.stream.accept_symbol(","):
                    order_by.append(self._order_item())
                continue
            if where is None and self.stream.accept_keyword("where"):
                where = self.parse_expr()
                continue
            break
        return RetrieveQuery(perspectives, targets, where, order_by,
                             mode, distinct)

    def _perspective_ref(self) -> PerspectiveRef:
        class_name = self.stream.expect_ident("perspective class").value
        var_name = None
        if (self.stream.current.kind == IDENT
                and not self.stream.current.is_keyword(*_CLAUSE_WORDS)):
            var_name = self.stream.advance().value
        return PerspectiveRef(class_name, var_name)

    def _target_list(self) -> List[TargetItem]:
        targets: List[TargetItem] = []
        targets.extend(self._target_item())
        while self.stream.accept_symbol(","):
            targets.extend(self._target_item())
        return targets

    def _target_item(self) -> List[TargetItem]:
        # Parenthetic factoring: "(Name, Salary) of Advisor".
        if self.stream.check_symbol("("):
            mark = self.stream.save()
            self.stream.advance()
            inner: List = [self.parse_expr()]
            factored = False
            while self.stream.accept_symbol(","):
                factored = True
                inner.append(self.parse_expr())
            if (self.stream.accept_symbol(")")
                    and factored and self.stream.check_keyword("of")):
                outer: List[PathStep] = []
                while self.stream.accept_keyword("of"):
                    outer.append(self._path_step())
                expanded = []
                for expression in inner:
                    expanded.append(TargetItem(
                        self._append_outer(expression, outer)))
                return expanded
            self.stream.restore(mark)
        return [TargetItem(self.parse_expr())]

    def _append_outer(self, expression, outer: List[PathStep]):
        """Attach a factored outer qualification to one inner expression."""
        if isinstance(expression, Path):
            return Path(expression.steps + list(outer))
        if isinstance(expression, Aggregate):
            expression.outer = list(expression.outer) + list(outer)
            return expression
        self.stream.fail("parenthetic factoring applies to qualifications")

    def _order_item(self) -> OrderItem:
        expression = self.parse_expr()
        descending = False
        if self.stream.accept_keyword("desc"):
            descending = True
        else:
            self.stream.accept_keyword("asc")
        return OrderItem(expression, descending)

    # -- Updates -----------------------------------------------------------------

    def parse_insert(self) -> InsertStatement:
        class_name = self.stream.expect_ident("class name").value
        from_class = None
        from_where = None
        if self.stream.accept_keyword("from"):
            from_class = self.stream.expect_ident("ancestor class").value
            self.stream.expect_keyword("where")
            from_where = self.parse_expr()
        assignments: List[Assignment] = []
        if self.stream.accept_symbol("("):
            if not self.stream.check_symbol(")"):
                assignments.append(self._assignment())
                while self.stream.accept_symbol(","):
                    assignments.append(self._assignment())
            self.stream.expect_symbol(")")
        return InsertStatement(class_name, assignments, from_class, from_where)

    def parse_modify(self) -> ModifyStatement:
        class_name = self.stream.expect_ident("class name").value
        self.stream.expect_symbol("(")
        assignments = [self._assignment()]
        while self.stream.accept_symbol(","):
            assignments.append(self._assignment())
        self.stream.expect_symbol(")")
        where = None
        if self.stream.accept_keyword("where"):
            where = self.parse_expr()
        return ModifyStatement(class_name, assignments, where)

    def parse_delete(self) -> DeleteStatement:
        class_name = self.stream.expect_ident("class name").value
        where = None
        if self.stream.accept_keyword("where"):
            where = self.parse_expr()
        return DeleteStatement(class_name, where)

    def _assignment(self) -> Assignment:
        attr_token = self.stream.expect_ident("attribute name")
        self.stream.expect_symbol(":=")
        op = "set"
        if self.stream.accept_keyword("include"):
            op = "include"
        elif self.stream.accept_keyword("exclude"):
            op = "exclude"
        value = self._assignment_value()
        return Assignment(attr_token.value, op, value,
                          line=attr_token.line, column=attr_token.column)

    def _assignment_value(self):
        """A WITH-selector if one follows, else a plain expression.

        A bare identifier without WITH parses as an ordinary expression;
        the engine treats a single-step path naming the range class of an
        EVA as "all members" when the attribute is entity-valued.
        """
        if self.stream.current.kind == IDENT:
            mark = self.stream.save()
            name = self.stream.advance().value
            if self.stream.accept_keyword("with"):
                self.stream.expect_symbol("(")
                where = self.parse_expr()
                self.stream.expect_symbol(")")
                return EntitySelector(name, where)
            self.stream.restore(mark)
        return self.parse_expr()

    # -- Expressions ----------------------------------------------------------------

    def parse_expr(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self.stream.accept_keyword("or"):
            left = Binary("or", left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._not_expr()
        while self.stream.accept_keyword("and"):
            left = Binary("and", left, self._not_expr())
        return left

    def _not_expr(self):
        if self.stream.accept_keyword("not"):
            return Unary("not", self._not_expr())
        return self._comparison()

    def _comparison(self):
        left = self._additive()
        if self.stream.accept_keyword("isa"):
            class_name = self.stream.expect_ident("class name").value
            if not isinstance(left, Path):
                self.stream.fail("ISA needs an entity-valued qualification")
            return IsaTest(left, class_name)
        if self.stream.accept_keyword("like"):
            return Binary("like", left, self._additive())
        op = None
        if self.stream.current.kind == SYMBOL and \
                self.stream.current.value in _COMPARISONS:
            op = _COMPARISONS[self.stream.advance().value]
        elif self.stream.accept_keyword("neq"):
            op = "neq"
        if op is None:
            return left
        right = self._comparison_rhs()
        return Binary(op, left, right)

    def _comparison_rhs(self):
        if (self.stream.current.is_keyword(*_QUANTIFIERS)
                and self.stream.peek().matches(SYMBOL, "(")):
            quantifier = self.stream.advance().value
            self.stream.expect_symbol("(")
            argument = self.parse_expr()
            self.stream.expect_symbol(")")
            return Quantified(quantifier, argument)
        return self._additive()

    def _additive(self):
        left = self._multiplicative()
        while self.stream.check_symbol("+", "-"):
            op = self.stream.advance().value
            left = Binary(op, left, self._multiplicative())
        return left

    def _multiplicative(self):
        left = self._unary()
        while self.stream.check_symbol("*", "/"):
            op = self.stream.advance().value
            left = Binary(op, left, self._unary())
        return left

    def _unary(self):
        if self.stream.accept_symbol("-"):
            return Unary("-", self._unary())
        return self._primary()

    def _primary(self):
        token = self.stream.current
        if token.kind == NUMBER:
            self.stream.advance()
            return Literal(int(token.value), line=token.line,
                           column=token.column)
        if token.kind == DECIMAL:
            self.stream.advance()
            from decimal import Decimal
            return Literal(Decimal(token.value), line=token.line,
                           column=token.column)
        if token.kind == STRING:
            self.stream.advance()
            return Literal(token.value, line=token.line, column=token.column)
        if token.kind == SYMBOL and token.value == "(":
            self.stream.advance()
            inner = self.parse_expr()
            self.stream.expect_symbol(")")
            return inner
        if token.kind != IDENT:
            self.stream.fail(f"unexpected token {token.value!r} in expression")

        word = token.value.lower()
        follows_paren = self.stream.peek().matches(SYMBOL, "(")
        if word in _AGGREGATES and (follows_paren
                                    or self.stream.peek().is_keyword("distinct")):
            return self._aggregate()
        if word in _QUANTIFIERS and follows_paren:
            quantifier = self.stream.advance().value
            self.stream.expect_symbol("(")
            argument = self.parse_expr()
            self.stream.expect_symbol(")")
            return Quantified(quantifier, argument)
        if word in _FUNCTIONS and follows_paren:
            name = self.stream.advance().value
            self.stream.expect_symbol("(")
            args = [self.parse_expr()]
            while self.stream.accept_symbol(","):
                args.append(self.parse_expr())
            self.stream.expect_symbol(")")
            return FunctionCall(name, args)
        if word in ("true", "false"):
            self.stream.advance()
            return Literal(word == "true", line=token.line,
                           column=token.column)
        return self._path()

    def _aggregate(self) -> Aggregate:
        func = self.stream.advance().value
        distinct = bool(self.stream.accept_keyword("distinct"))
        self.stream.expect_symbol("(")
        if not distinct:
            distinct = bool(self.stream.accept_keyword("distinct"))
        argument = self.parse_expr()
        self.stream.expect_symbol(")")
        outer: List[PathStep] = []
        while self.stream.check_keyword("of"):
            # "of" binds to the aggregate scope (paper §4.6).
            self.stream.advance()
            outer.append(self._path_step())
        return Aggregate(func, argument, outer, distinct)

    def _path(self) -> Path:
        steps = [self._path_step()]
        while self.stream.accept_keyword("of"):
            steps.append(self._path_step())
        return Path(steps)

    def _path_step(self) -> PathStep:
        transitive = False
        inverse_of = False
        chain = None
        if (self.stream.check_keyword("transitive")
                and self.stream.peek().matches(SYMBOL, "(")):
            self.stream.advance()
            self.stream.expect_symbol("(")
            transitive = True
        if (self.stream.check_keyword("inverse")
                and self.stream.peek().matches(SYMBOL, "(")):
            self.stream.advance()
            self.stream.expect_symbol("(")
            inverse_of = True
        name_token = self.stream.expect_ident("qualification name")
        name = name_token.value
        if inverse_of:
            self.stream.expect_symbol(")")
        if transitive:
            # §4.7: "any cyclic chain of EVAs" — transitive(a of b of ...).
            chain = [name]
            while self.stream.accept_keyword("of"):
                chain.append(
                    self.stream.expect_ident("qualification name").value)
            self.stream.expect_symbol(")")
        as_class = None
        if self.stream.accept_keyword("as"):
            as_class = self.stream.expect_ident("role class").value
        return PathStep(name, as_class, transitive, inverse_of,
                        transitive_chain=tuple(chain) if chain else None,
                        line=name_token.line, column=name_token.column)
