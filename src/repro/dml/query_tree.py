"""The query tree QT: range variables, binding, TYPE 1/2/3 labels.

Paper §4.4–§4.5: all occurrences of a perspective class name bind to one
range (loop) variable; all occurrences of an identically qualified EVA or
multi-valued DVA bind to one range variable too.  The variables form a
tree whose root(s) are the perspective variables and whose edges are EVAs
or MV DVAs.  Each node is labelled:

* TYPE 3 — it and all its descendants appear only in the target list;
* TYPE 2 — it and all its descendants appear only in the selection
  expression;
* TYPE 1 — otherwise (the root is always TYPE 1).

Binding is broken inside aggregate functions, quantifiers and transitive
closure (§4.4); such constructs get their own *scope*, so their nodes are
never shared with identically-qualified nodes outside.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import BindingError

MAIN_SCOPE = 0

TYPE1 = 1
TYPE2 = 2
TYPE3 = 3


class QTNode:
    """One range variable of the query tree."""

    _counter = 0

    def __init__(self, kind: str, scope_id: int,
                 parent: Optional["QTNode"] = None,
                 var_name: Optional[str] = None,
                 class_name: Optional[str] = None,
                 eva=None, mv_attr=None,
                 as_class: Optional[str] = None,
                 transitive: bool = False,
                 step_key: Optional[tuple] = None):
        if kind not in ("root", "eva", "mvdva"):
            raise BindingError(f"unknown QT node kind {kind!r}")
        QTNode._counter += 1
        self.id = QTNode._counter
        self.kind = kind
        self.scope_id = scope_id
        self.parent = parent
        #: for roots: the range-variable name (perspective name or alias)
        self.var_name = var_name
        #: the class the node's entities belong to, after role conversion
        #: (None for mvdva nodes, whose instances are values)
        self.class_name = class_name
        #: for eva nodes: the schema EVA traversed
        self.eva = eva
        #: for mvdva nodes: the MV DVA attribute
        self.mv_attr = mv_attr
        self.as_class = as_class
        self.transitive = transitive
        #: for transitive closure: the EVA hop chain in application order
        #: (a single-element list for the plain reflexive case)
        self.transitive_evas = [eva] if transitive and eva is not None \
            else None
        self.step_key = step_key
        self.children: Dict[tuple, "QTNode"] = {}
        self.used_in_target = False
        self.used_in_selection = False
        self.label: Optional[int] = None

    @property
    def depth(self) -> int:
        depth = 0
        node = self
        while node.parent is not None:
            depth += 1
            node = node.parent
        return depth

    def child(self, step_key: tuple) -> Optional["QTNode"]:
        return self.children.get(step_key)

    def add_child(self, node: "QTNode") -> "QTNode":
        self.children[node.step_key] = node
        return node

    def describe(self) -> str:
        if self.kind == "root":
            return f"{self.var_name}({self.class_name})"
        name = self.eva.name if self.kind == "eva" else self.mv_attr.name
        if self.transitive:
            name = f"transitive({name})"
        if self.as_class:
            name = f"{name} as {self.as_class}"
        return f"{self.parent.describe()}.{name}"

    def __repr__(self):
        label = f" TYPE{self.label}" if self.label else ""
        return f"<QTNode #{self.id} {self.describe()}{label}>"


class QueryTree:
    """The full tree: one root per perspective plus scoped subtrees."""

    def __init__(self):
        self.roots: List[QTNode] = []
        self._roots_by_var: Dict[str, QTNode] = {}
        self._scope_counter = MAIN_SCOPE

    def new_scope(self) -> int:
        """Allocate a scope id for an aggregate/quantifier/transitive body."""
        self._scope_counter += 1
        return self._scope_counter

    def add_root(self, var_name: str, class_name: str,
                 scope_id: int = MAIN_SCOPE) -> QTNode:
        node = QTNode("root", scope_id, var_name=var_name,
                      class_name=class_name)
        if scope_id == MAIN_SCOPE:
            if var_name in self._roots_by_var:
                raise BindingError(
                    f"duplicate perspective variable {var_name!r}")
            self.roots.append(node)
            self._roots_by_var[var_name] = node
        return node

    def root_for(self, var_name: str) -> Optional[QTNode]:
        return self._roots_by_var.get(var_name)

    # -- Labelling ---------------------------------------------------------------

    def label_nodes(self) -> None:
        """Compute TYPE 1/2/3 labels for all main-scope nodes."""
        for root in self.roots:
            self._label(root, is_root=True)

    def _label(self, node: QTNode, is_root: bool = False) -> Tuple[bool, bool]:
        """Returns (subtree_uses_target, subtree_uses_selection)."""
        target = node.used_in_target
        selection = node.used_in_selection
        for child in node.children.values():
            child_target, child_selection = self._label(child)
            target = target or child_target
            selection = selection or child_selection
        if is_root:
            node.label = TYPE1
        elif target and not selection:
            node.label = TYPE3
        elif selection and not target:
            node.label = TYPE2
        else:
            node.label = TYPE1
        return target, selection

    # -- Enumeration helpers -------------------------------------------------------

    def loop_nodes(self, root: QTNode) -> List[QTNode]:
        """TYPE 1 and TYPE 3 nodes of a root's subtree in depth-first order
        (the X1..Xm of the paper's semantics program)."""
        result: List[QTNode] = []

        def visit(node: QTNode):
            if node.label in (TYPE1, TYPE3):
                result.append(node)
                for child in node.children.values():
                    visit(child)
        visit(root)
        return result

    def exists_children(self, node: QTNode) -> List[QTNode]:
        """TYPE 2 children of a node (roots of existential subtrees)."""
        return [c for c in node.children.values() if c.label == TYPE2]

    def all_nodes(self) -> List[QTNode]:
        result = []

        def visit(node):
            result.append(node)
            for child in node.children.values():
                visit(child)
        for root in self.roots:
            visit(root)
        return result

    def describe(self) -> str:
        lines = []

        def visit(node, indent):
            label = f"TYPE{node.label}" if node.label else "scoped"
            if node.kind == "root":
                text = f"{node.var_name} ({node.class_name})"
            elif node.kind == "eva":
                text = node.eva.name + (" [transitive]" if node.transitive else "")
            else:
                text = node.mv_attr.name
            lines.append("  " * indent + f"{text}: {label}")
            for child in node.children.values():
                visit(child, indent + 1)
        for root in self.roots:
            visit(root, 0)
        return "\n".join(lines)


def build_query_tree(perspectives) -> QueryTree:
    """Create a QueryTree with one main-scope root per perspective."""
    tree = QueryTree()
    for ref in perspectives:
        tree.add_root(ref.effective_var, ref.class_name)
    return tree
