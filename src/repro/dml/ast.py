"""AST for SIM DML statements and expressions.

Nodes keep the *written* form (e.g. a qualification chain exactly as the
user ordered it); semantic resolution annotates them in place (the
``resolved`` fields) rather than rewriting, so error messages and the
catalog can always refer back to the source shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.naming import canon


# --------------------------------------------------------------------- paths

@dataclass
class PathStep:
    """One step of a qualification chain, as written.

    ``Title of Courses-Enrolled of Student`` has steps
    ``[title, courses-enrolled, student]`` (written order: attribute first,
    perspective last).

    ``as_class`` carries an ``AS`` role conversion;
    ``transitive`` marks ``TRANSITIVE(<eva>)``;
    ``inverse_of`` marks ``INVERSE(<eva>)`` (the step name is then the EVA
    whose inverse is meant).
    """

    name: str
    as_class: Optional[str] = None
    transitive: bool = False
    inverse_of: bool = False
    #: for TRANSITIVE(<eva> of <eva> ...): the chain as written (innermost
    #: attribute first); None for plain steps, (name,) for single-EVA
    #: closures
    transitive_chain: Optional[tuple] = None
    #: source position of the step's name token (1-based; 0 = unknown)
    line: int = 0
    column: int = 0

    def __post_init__(self):
        self.name = canon(self.name)
        if self.as_class is not None:
            self.as_class = canon(self.as_class)
        if self.transitive and self.transitive_chain is None:
            self.transitive_chain = (self.name,)
        if self.transitive_chain is not None:
            self.transitive_chain = tuple(canon(n)
                                          for n in self.transitive_chain)

    def describe(self) -> str:
        text = self.name
        if self.inverse_of:
            text = f"inverse({text})"
        if self.transitive:
            chain = " of ".join(self.transitive_chain or (self.name,))
            text = f"transitive({chain})"
        if self.as_class:
            text += f" as {self.as_class}"
        return text


class Expression:
    """Base class for expressions; purely a marker."""


@dataclass
class Path(Expression):
    """A qualification chain (possibly shorthand; resolution completes it).

    After resolution (see :mod:`repro.dml.qualification`):

    * ``resolved_steps`` — the complete chain from the anchor outward
      (anchor first), each a ``(kind, payload)`` tuple produced by the
      qualifier;
    * ``anchor_var`` — the perspective/range-variable name the chain is
      rooted at.
    """

    steps: List[PathStep]

    def __post_init__(self):
        # Filled in by the qualifier:
        self.anchor_node = None            # QTNode the chain is rooted at
        self.anchor_view: Optional[str] = None  # AS conversion on the anchor
        self.chain_nodes: List = []        # traversal QTNodes, anchor-out
        self.terminal_attr = None          # terminal single-valued DVA
        self.terminal_view: Optional[str] = None

    @property
    def value_node(self):
        """The node whose instance carries this path's value (the deepest
        traversal node, or the anchor when the chain has no traversals)."""
        return self.chain_nodes[-1] if self.chain_nodes else self.anchor_node

    def describe(self) -> str:
        return " of ".join(step.describe() for step in self.steps)


@dataclass
class Literal(Expression):
    value: object
    #: source position of the literal token (1-based; 0 = unknown)
    line: int = 0
    column: int = 0

    def describe(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


@dataclass
class Binary(Expression):
    """Binary operator: arithmetic (+,-,*,/), comparison (=, <, <=, >, >=,
    neq), logical (and, or), or pattern match (like)."""

    op: str
    left: Expression
    right: Expression

    def describe(self) -> str:
        return f"({self.left.describe()} {self.op} {self.right.describe()})"


@dataclass
class Unary(Expression):
    """Unary operator: '-' or 'not'."""

    op: str
    operand: Expression

    def describe(self) -> str:
        return f"({self.op} {self.operand.describe()})"


@dataclass
class Aggregate(Expression):
    """An aggregate with delimited scope (paper §4.6).

    ``AVG(Salary of Instructors-Employed) of Department``:
    ``func='avg'``, ``argument`` is the inner path (binding broken inside),
    ``outer`` is the qualification applied outside the scope
    (``of Department``), possibly empty.
    """

    func: str
    argument: Expression
    outer: List[PathStep] = field(default_factory=list)
    distinct: bool = False

    def __post_init__(self):
        self.func = self.func.lower()
        # Filled by resolution:
        self.outer_path: Optional[Path] = None
        self.anchor_node = None
        self.scope_id: Optional[int] = None
        self.scope_nodes: List = []

    def describe(self) -> str:
        inner = self.argument.describe()
        distinct = "distinct " if self.distinct else ""
        text = f"{self.func}({distinct}{inner})"
        if self.outer:
            text += " of " + " of ".join(s.describe() for s in self.outer)
        return text


@dataclass
class Quantified(Expression):
    """A quantified operand: SOME/ALL/NO over a path (paper §4.6, §4.9).

    Used as one side of a comparison: ``assigned-department neq
    some(major-department of advisees)``.  Binding is broken inside.
    """

    quantifier: str
    argument: Expression

    def __post_init__(self):
        self.quantifier = self.quantifier.lower()
        self.scope_id: Optional[int] = None
        self.scope_nodes: List = []

    def describe(self) -> str:
        return f"{self.quantifier}({self.argument.describe()})"


@dataclass
class IsaTest(Expression):
    """Role membership test: ``<path> ISA <class>`` (paper example 7)."""

    entity: Path
    class_name: str

    def __post_init__(self):
        self.class_name = canon(self.class_name)

    def describe(self) -> str:
        return f"({self.entity.describe()} isa {self.class_name})"


@dataclass
class FunctionCall(Expression):
    """A primitive scalar function (§4.9 "an array of operators and
    primitive functions")."""

    name: str
    args: List[Expression]

    def __post_init__(self):
        self.name = self.name.lower()

    def describe(self) -> str:
        inner = ", ".join(a.describe() for a in self.args)
        return f"{self.name}({inner})"


# ---------------------------------------------------------------- statements

@dataclass
class PerspectiveRef:
    """One entry of the FROM list: a class with an optional range variable."""

    class_name: str
    var_name: Optional[str] = None

    def __post_init__(self):
        self.class_name = canon(self.class_name)
        if self.var_name is not None:
            self.var_name = canon(self.var_name)

    @property
    def effective_var(self) -> str:
        return self.var_name or self.class_name


@dataclass
class TargetItem:
    expression: Expression
    label: Optional[str] = None

    def describe(self) -> str:
        return self.expression.describe()


@dataclass
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass
class RetrieveQuery:
    """A Retrieve statement (paper §4.3)."""

    perspectives: List[PerspectiveRef]
    targets: List[TargetItem]
    where: Optional[Expression] = None
    order_by: List[OrderItem] = field(default_factory=list)
    mode: str = "table"          # "table" | "structure"
    distinct: bool = False

    kind = "retrieve"


@dataclass
class EntitySelector:
    """``<object name> WITH (<boolean expn>)`` in update statements.

    ``name`` is a class name (single-valued EVA assignment, MV inclusion)
    or the EVA's own name (exclusion); ``where`` may be None, meaning all
    members.
    """

    name: str
    where: Optional[Expression] = None

    def __post_init__(self):
        self.name = canon(self.name)


@dataclass
class Assignment:
    """``attr := value``, ``attr := include <sel>``, ``attr := exclude <sel>``.

    ``op`` ∈ {"set", "include", "exclude"}; ``value`` is an Expression (DVA
    assignment) or an :class:`EntitySelector` (EVA assignment / MV ops).
    """

    attribute: str
    op: str
    value: object
    #: source position of the attribute name token (1-based; 0 = unknown)
    line: int = 0
    column: int = 0

    def __post_init__(self):
        self.attribute = canon(self.attribute)
        self.op = self.op.lower()


@dataclass
class InsertStatement:
    """INSERT <class> [FROM <class> WHERE <expr>] (<assignments>)."""

    class_name: str
    assignments: List[Assignment] = field(default_factory=list)
    from_class: Optional[str] = None
    from_where: Optional[Expression] = None

    kind = "insert"

    def __post_init__(self):
        self.class_name = canon(self.class_name)
        if self.from_class is not None:
            self.from_class = canon(self.from_class)


@dataclass
class ModifyStatement:
    """MODIFY <class> (<assignments>) WHERE <expr>."""

    class_name: str
    assignments: List[Assignment]
    where: Optional[Expression] = None

    kind = "modify"

    def __post_init__(self):
        self.class_name = canon(self.class_name)


@dataclass
class DeleteStatement:
    """DELETE <class> WHERE <expr>."""

    class_name: str
    where: Optional[Expression] = None

    kind = "delete"

    def __post_init__(self):
        self.class_name = canon(self.class_name)


Statement = (RetrieveQuery, InsertStatement, ModifyStatement, DeleteStatement)
