"""Qualification: connecting every attribute to a perspective (paper §4.2).

The :class:`Qualifier` resolves a parsed statement against the schema:

* determines the perspective classes (explicit FROM list, or inferred from
  the outermost qualification names, as in the paper's examples without a
  FROM clause);
* resolves every qualification chain, walking the written steps from the
  perspective inward, applying AS role conversions and INVERSE();
* completes shorthand qualifications ("Qualification can be cut short at
  any stage where the context is sufficient for the system Parser to
  complete it unambiguously"): a breadth-first search over EVA chains from
  each perspective finds the unique shortest completion, and ambiguity is
  an error;
* applies the binding rules (§4.4) by getting-or-creating query-tree nodes
  keyed by their full qualification, with fresh scopes inside aggregates,
  quantifiers and transitive closure;
* marks target/selection usage so the tree can be TYPE-labelled.

The resolver leaves annotations on the AST nodes themselves:
``Path.anchor_node``, ``Path.chain_nodes``, ``Path.terminal_attr``;
``Aggregate.anchor_node``/``scope_nodes``; ``Quantified`` likewise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import QualificationError
from repro.naming import canon
from repro.dml.parser import parse_expression
from repro.dml.ast import (
    Aggregate,
    Binary,
    FunctionCall,
    IsaTest,
    Literal,
    Path,
    PathStep,
    PerspectiveRef,
    Quantified,
    RetrieveQuery,
    Unary,
)
from repro.dml.query_tree import MAIN_SCOPE, QTNode, QueryTree
from repro.schema.schema import Schema

#: search depth bound for shorthand completion
_MAX_COMPLETION_DEPTH = 4


def _conjoin(expressions):
    """AND together the non-None expressions (None when all are None)."""
    present = [e for e in expressions if e is not None]
    if not present:
        return None
    combined = present[0]
    for expression in present[1:]:
        combined = Binary("and", combined, expression)
    return combined


class _ScopeContext:
    """Resolution context: the anchors visible to a (sub)expression."""

    def __init__(self, qualifier: "Qualifier", tree: QueryTree,
                 scope_id: int, parent: Optional["_ScopeContext"] = None):
        self.qualifier = qualifier
        self.tree = tree
        self.scope_id = scope_id
        self.parent = parent
        # scoped node sharing: (parent node id, step_key) -> QTNode
        self._scoped_children: Dict[Tuple[int, tuple], QTNode] = {}
        # nodes created in this scope, in creation order
        self.nodes: List[QTNode] = []
        # universal roots created in this scope: class name -> node
        self._universal_roots: Dict[str, QTNode] = {}

    @property
    def is_main(self) -> bool:
        return self.scope_id == MAIN_SCOPE

    def anchors(self) -> List[QTNode]:
        """The roots a path may anchor at (main perspectives)."""
        context = self
        while context.parent is not None:
            context = context.parent
        return list(context.tree.roots)

    def get_or_create_child(self, parent: QTNode, step_key: tuple,
                            factory) -> QTNode:
        if self.is_main and parent.scope_id == MAIN_SCOPE:
            node = parent.child(step_key)
            if node is None:
                node = factory()
                parent.add_child(node)
            return node
        key = (parent.id, step_key)
        node = self._scoped_children.get(key)
        if node is None:
            node = factory()
            self._scoped_children[key] = node
            self.nodes.append(node)
        return node

    def universal_root(self, class_name: str) -> QTNode:
        node = self._universal_roots.get(class_name)
        if node is None:
            node = QTNode("root", self.scope_id,
                          var_name=f"#all-{class_name}-{self.scope_id}",
                          class_name=class_name)
            self._universal_roots[class_name] = node
            self.nodes.append(node)
        return node


class Qualifier:
    """Resolves DML statements against a resolved schema."""

    def __init__(self, schema: Schema):
        self.schema = schema

    # -- Entry points -----------------------------------------------------------

    def resolve_retrieve(self, query: RetrieveQuery) -> QueryTree:
        perspectives = query.perspectives or self._infer_perspectives(query)
        query.perspectives = perspectives
        view_predicates = self._rewrite_view_perspectives(query)
        for ref in perspectives:
            if not self.schema.has_class(ref.class_name):
                raise QualificationError(
                    f"unknown perspective class {ref.class_name!r}"
                ).with_code("SIM104")
        tree = QueryTree()
        for ref in query.perspectives:
            tree.add_root(ref.effective_var, ref.class_name)
        context = _ScopeContext(self, tree, MAIN_SCOPE)
        for item in query.targets:
            self._resolve_expression(item.expression, context, in_target=True)
        if query.where is not None:
            self._resolve_expression(query.where, context, in_target=False)
        for predicate in view_predicates:
            self._resolve_expression(predicate, context, in_target=False)
        for order in query.order_by:
            self._resolve_expression(order.expression, context, in_target=True)
        if view_predicates:
            query.where = _conjoin([*view_predicates, query.where])
        tree.label_nodes()
        return tree

    def _rewrite_view_perspectives(self, query: RetrieveQuery):
        """Views as perspectives (paper §6): a view name in the FROM list
        denotes its class filtered by the view predicate.  The root keeps
        the view's name as its range variable, so qualifications written
        against the view name still anchor; the predicate is conjoined
        into the selection expression.  Views are read-only: update
        statements must name real classes."""
        if getattr(query, "_views_rewritten", False):
            return []
        predicates = []
        for ref in query.perspectives:
            view = self.schema.view(ref.class_name)
            if view is None:
                continue
            if ref.var_name is None:
                ref.var_name = ref.class_name  # keep the view name usable
            ref.class_name = view.class_name
            if view.where_text:
                predicates.append(parse_expression(view.where_text))
        query._views_rewritten = True
        return predicates

    def resolve_selection(self, class_name: str, expression) -> QueryTree:
        """Resolve a bare selection expression with one perspective class
        (used for WHERE clauses of updates and VERIFY assertions)."""
        tree = QueryTree()
        tree.add_root(canon(class_name), canon(class_name))
        context = _ScopeContext(self, tree, MAIN_SCOPE)
        if expression is not None:
            self._resolve_expression(expression, context, in_target=False)
        tree.label_nodes()
        return tree

    def resolve_anchored(self, tree: QueryTree, anchor: QTNode,
                         expression) -> List[QTNode]:
        """Resolve an auxiliary expression (update-assignment RHS, WITH
        selector body) in a fresh scope anchored at ``anchor``.

        Returns the scoped nodes the expression introduced, in
        parent-before-child order, for scope enumeration.
        """
        scope_id = tree.new_scope()
        context = _ScopeContext(self, tree, scope_id)
        context.forced_anchor = anchor
        self._resolve_expression(expression, context, in_target=False)
        return list(context.nodes)

    def _infer_perspectives(self, query: RetrieveQuery) -> List[PerspectiveRef]:
        """Without a FROM clause, the perspectives are the classes named as
        the outermost qualification of the query's paths."""
        found: List[str] = []

        def scan(expression):
            if isinstance(expression, Path):
                outer = expression.steps[-1]
                if (not outer.transitive and not outer.inverse_of
                        and self.schema.has_class(outer.name)
                        and outer.name not in found):
                    found.append(outer.name)
            elif isinstance(expression, Binary):
                scan(expression.left)
                scan(expression.right)
            elif isinstance(expression, Unary):
                scan(expression.operand)
            elif isinstance(expression, Aggregate):
                if expression.outer:
                    outer = expression.outer[-1]
                    if (self.schema.has_class(outer.name)
                            and outer.name not in found):
                        found.append(outer.name)
                else:
                    scan(expression.argument)
            elif isinstance(expression, Quantified):
                scan(expression.argument)
            elif isinstance(expression, IsaTest):
                scan(expression.entity)
            elif isinstance(expression, FunctionCall):
                for arg in expression.args:
                    scan(arg)

        for item in query.targets:
            scan(item.expression)
        if query.where is not None:
            scan(query.where)
        for order in query.order_by:
            scan(order.expression)
        if not found:
            raise QualificationError(
                "cannot infer a perspective class; add a FROM clause"
            ).with_code("SIM104")
        return [PerspectiveRef(name) for name in found]

    # -- Expression walk -----------------------------------------------------------

    def _resolve_expression(self, expression, context: _ScopeContext,
                            in_target: bool) -> None:
        if isinstance(expression, Literal):
            return
        if isinstance(expression, Path):
            self._resolve_path(expression, context, in_target)
            return
        if isinstance(expression, Binary):
            self._resolve_expression(expression.left, context, in_target)
            self._resolve_expression(expression.right, context, in_target)
            return
        if isinstance(expression, Unary):
            self._resolve_expression(expression.operand, context, in_target)
            return
        if isinstance(expression, IsaTest):
            self._resolve_path(expression.entity, context, in_target,
                               require_entity=True)
            if not self.schema.has_class(expression.class_name):
                raise QualificationError(
                    f"unknown class {expression.class_name!r} in ISA"
                ).with_code("SIM101")
            return
        if isinstance(expression, FunctionCall):
            for arg in expression.args:
                self._resolve_expression(arg, context, in_target)
            return
        if isinstance(expression, Aggregate):
            self._resolve_aggregate(expression, context, in_target)
            return
        if isinstance(expression, Quantified):
            self._resolve_quantified(expression, context, in_target)
            return
        raise QualificationError(
            f"cannot resolve expression {expression!r}")

    def _resolve_aggregate(self, aggregate: Aggregate,
                           context: _ScopeContext, in_target: bool) -> None:
        """Aggregates delimit scope (§4.6): the outer qualification resolves
        in the enclosing scope; the argument resolves in a fresh scope."""
        anchor_node = None
        if aggregate.outer:
            outer_path = Path(list(aggregate.outer))
            self._resolve_path(outer_path, context, in_target,
                               require_entity=True)
            aggregate.outer_path = outer_path
            anchor_node = outer_path.value_node
        scope_id = context.tree.new_scope()
        scope = _ScopeContext(self, context.tree, scope_id, parent=context)
        scope.forced_anchor = anchor_node
        self._resolve_expression(aggregate.argument, scope, in_target=None)
        aggregate.scope_id = scope_id
        aggregate.anchor_node = anchor_node
        aggregate.scope_nodes = list(scope.nodes)
        # The aggregate's value contributes wherever the aggregate appears.
        self._mark_anchor_usage(aggregate, in_target)

    def _resolve_quantified(self, quantified: Quantified,
                            context: _ScopeContext, in_target: bool) -> None:
        scope_id = context.tree.new_scope()
        scope = _ScopeContext(self, context.tree, scope_id, parent=context)
        scope.forced_anchor = getattr(context, "forced_anchor", None)
        self._resolve_expression(quantified.argument, scope, in_target=None)
        quantified.scope_id = scope_id
        quantified.scope_nodes = list(scope.nodes)
        self._mark_anchor_usage(quantified, in_target)

    def _mark_anchor_usage(self, scoped_expr, in_target: bool) -> None:
        """Mark the main-scope anchors a scoped expression hangs from, so
        the TYPE labelling sees that the anchor feeds the target list or
        the selection expression through the scoped construct."""
        def mark(expression):
            if isinstance(expression, Path):
                for node in [expression.anchor_node] + expression.chain_nodes:
                    if node is not None and node.scope_id == MAIN_SCOPE:
                        if in_target:
                            node.used_in_target = True
                        else:
                            node.used_in_selection = True
            elif isinstance(expression, Binary):
                mark(expression.left)
                mark(expression.right)
            elif isinstance(expression, Unary):
                mark(expression.operand)
            elif isinstance(expression, (Aggregate, Quantified)):
                mark(expression.argument)
                if isinstance(expression, Aggregate) and expression.outer_path:
                    mark(expression.outer_path)
            elif isinstance(expression, IsaTest):
                mark(expression.entity)
            elif isinstance(expression, FunctionCall):
                for arg in expression.args:
                    mark(arg)
        mark(scoped_expr)

    # -- Path resolution ----------------------------------------------------------

    def _resolve_path(self, path: Path, context: _ScopeContext,
                      in_target: bool, require_entity: bool = False) -> None:
        """Resolve one qualification chain and annotate the Path."""
        anchor, remaining = self._find_anchor(path, context)
        chain_nodes, terminal_attr, terminal_view, derived = \
            self._walk_steps(anchor, remaining, context,
                             start_class=getattr(path, "anchor_view", None))
        if derived is not None:
            expression, scope_nodes = self._last_derived_resolution
            path.derived = derived
            path.derived_expr = expression
            path.derived_scope_nodes = scope_nodes
        else:
            path.derived = None
        path.anchor_node = anchor
        path.chain_nodes = chain_nodes
        path.terminal_attr = terminal_attr
        path.terminal_view = terminal_view
        if require_entity and (terminal_attr is not None
                               or getattr(path, "derived", None) is not None):
            raise QualificationError(
                f"{path.describe()!r} must end at an entity, not a value"
            ).with_code("SIM110")
        # Usage marking (binding labels) applies to main-scope nodes only;
        # in_target=None means "scoped resolution, do not mark" — the
        # enclosing construct marks its anchors itself.
        if in_target is not None:
            for node in [anchor] + chain_nodes:
                if node.scope_id == MAIN_SCOPE:
                    if in_target:
                        node.used_in_target = True
                    else:
                        node.used_in_selection = True

    def _find_anchor(self, path: Path, context: _ScopeContext
                     ) -> Tuple[QTNode, List[PathStep]]:
        """Anchor a written chain: explicit perspective name, a class name
        (universal root inside scopes), or shorthand completion."""
        steps = list(path.steps)
        outer = steps[-1]

        if not outer.transitive and not outer.inverse_of:
            if context.is_main:
                # Explicit anchor at a perspective variable or class name.
                for root in context.anchors():
                    if outer.name in (root.var_name, root.class_name):
                        if outer.as_class is not None:
                            self._check_role_conversion(
                                root.class_name, outer.as_class)
                        path.anchor_view = outer.as_class
                        return root, steps[:-1]
            else:
                # Binding is broken inside aggregate/quantifier scopes
                # (§4.4): an explicit range-variable alias still correlates,
                # but a bare class name denotes a fresh variable over the
                # whole class ("AVG(Salary of Instructor) gives the average
                # salary of all instructors in the database").  A forced
                # anchor (aggregate outer path, update statement entity) is
                # addressable by its own name.
                forced = getattr(context, "forced_anchor", None)
                if forced is not None and outer.name in (
                        forced.var_name, forced.class_name):
                    if outer.as_class is not None:
                        self._check_role_conversion(
                            forced.class_name, outer.as_class)
                    path.anchor_view = outer.as_class
                    return forced, steps[:-1]
                for root in context.anchors():
                    if root.var_name != root.class_name \
                            and outer.name == root.var_name:
                        path.anchor_view = outer.as_class
                        return root, steps[:-1]
                if self.schema.has_class(outer.name):
                    anchor = context.universal_root(outer.name)
                    if outer.as_class is not None:
                        self._check_role_conversion(outer.name, outer.as_class)
                    path.anchor_view = outer.as_class
                    return anchor, steps[:-1]

        # Shorthand: complete the chain from some anchor.
        path.anchor_view = None
        return self._complete_shorthand(path, steps, context)

    def _complete_shorthand(self, path: Path, steps: List[PathStep],
                            context: _ScopeContext
                            ) -> Tuple[QTNode, List[PathStep]]:
        """Breadth-first search for the unique shortest completion.

        Candidate anchors: inside aggregate/quantifier scopes with a forced
        anchor, only that anchor; otherwise every perspective root.
        """
        forced = getattr(context, "forced_anchor", None)
        anchors = [forced] if forced is not None else context.anchors()
        outer_name = steps[-1].name

        candidates: List[Tuple[QTNode, List[PathStep]]] = []
        for depth in range(_MAX_COMPLETION_DEPTH + 1):
            for anchor in anchors:
                for prefix in self._eva_chains(anchor.class_name, depth):
                    start_class = (prefix[-1].range_class_name
                                   if prefix else anchor.class_name)
                    if self._step_resolvable(start_class, steps[-1]):
                        # Written order is innermost-first, so the chain
                        # from the anchor is appended reversed.
                        completed = steps + [
                            PathStep(eva.name) for eva in reversed(prefix)]
                        candidates.append((anchor, completed))
            if candidates:
                break
        if not candidates:
            raise QualificationError(
                f"cannot qualify {path.describe()!r} to any perspective"
            ).with_code("SIM101")
        unique = {(a.id, tuple(s.name for s in c)) for a, c in candidates}
        if len(unique) > 1:
            descriptions = sorted(
                f"{a.var_name}: {' of '.join(s.name for s in reversed(c))}"
                for a, c in candidates)
            raise QualificationError(
                f"ambiguous qualification {path.describe()!r}; candidates: "
                + "; ".join(descriptions)).with_code("SIM102")
        anchor, completed = candidates[0]
        return anchor, completed

    def _eva_chains(self, class_name: str, depth: int):
        """All EVA chains of exactly ``depth`` hops starting at a class."""
        if depth == 0:
            yield []
            return
        sim_class = self.schema.get_class(class_name)
        for attr in sim_class.evas():
            for rest in self._eva_chains(attr.range_class_name, depth - 1):
                yield [attr] + rest

    def _step_resolvable(self, class_name: str, step: PathStep) -> bool:
        sim_class = self.schema.get_class(class_name)
        if step.transitive:
            return self._transitive_resolvable(class_name, step)
        if step.inverse_of:
            return self._find_inverse(sim_class, step.name) is not None
        return (sim_class.has_attribute(step.name)
                or self.schema.find_derived(class_name, step.name)
                is not None)

    def _transitive_resolvable(self, class_name: str,
                               step: PathStep) -> bool:
        """True when the step's EVA chain composes from ``class_name`` back
        into its own hierarchy (a legal §4.7 cyclic chain)."""
        graph = self.schema.graph
        hop_class = class_name
        for name in reversed(step.transitive_chain or (step.name,)):
            sim_class = self.schema.get_class(hop_class)
            if not sim_class.has_attribute(name):
                return False
            attr = sim_class.attribute(name)
            if not attr.is_eva:
                return False
            hop_class = attr.range_class_name
        return (graph.is_ancestor(hop_class, class_name)
                or graph.is_ancestor(class_name, hop_class))

    def _find_inverse(self, sim_class, eva_name: str):
        """INVERSE(<eva>): the attribute of ``sim_class`` whose inverse is
        named ``eva_name`` (paper §3.2)."""
        for attr in sim_class.evas():
            if attr.inverse is not None and attr.inverse.name == eva_name:
                return attr
        return None

    def _check_role_conversion(self, from_class: str, to_class: str) -> None:
        if not self.schema.has_class(to_class):
            raise QualificationError(
                f"unknown class {to_class!r} in AS").with_code("SIM103")
        if not self.schema.graph.same_hierarchy(from_class, to_class):
            raise QualificationError(
                f"AS conversion from {from_class!r} to {to_class!r} crosses "
                f"generalization hierarchies").with_code("SIM103")

    def _walk_steps(self, anchor: QTNode, remaining: List[PathStep],
                    context: _ScopeContext,
                    start_class: Optional[str] = None):
        """Walk written steps (outermost already consumed) inward, creating
        or sharing query-tree nodes.  Returns (chain nodes, terminal DVA or
        None, terminal role view)."""
        current_class = start_class or anchor.class_name
        current_node = anchor
        chain_nodes: List[QTNode] = []
        terminal_attr = None
        terminal_view = None

        derived_hit = None
        steps = list(reversed(remaining))  # traverse from perspective inward
        for position, step in enumerate(steps):
            is_last = position == len(steps) - 1
            sim_class = self.schema.get_class(current_class)
            if step.transitive:
                current_node, current_class = self._transitive_node(
                    step, current_node, current_class, context)
                chain_nodes.append(current_node)
                continue
            if step.inverse_of:
                attr = self._find_inverse(sim_class, step.name)
                if attr is None:
                    raise QualificationError(
                        f"no EVA with inverse {step.name!r} on "
                        f"{current_class!r}").with_code("SIM101")
            else:
                if not sim_class.has_attribute(step.name):
                    derived = self.schema.find_derived(current_class,
                                                       step.name)
                    if derived is not None and is_last:
                        self._attach_derived(current_node, derived, context)
                        return chain_nodes, None, None, derived
                    raise QualificationError(
                        f"class {current_class!r} has no attribute "
                        f"{step.name!r}").with_code("SIM101")
                attr = sim_class.attribute(step.name)

            if attr.is_eva:
                step_key = ("eva", attr.owner_name, attr.name, step.as_class,
                            False)
                range_class = attr.range_class_name
                if step.as_class is not None:
                    self._check_role_conversion(range_class, step.as_class)
                    range_class = step.as_class

                def factory(attr=attr, step=step, range_class=range_class,
                            parent=current_node, step_key=step_key):
                    return QTNode(
                        "eva", context.scope_id, parent=parent,
                        class_name=range_class, eva=attr,
                        as_class=step.as_class, transitive=False,
                        step_key=step_key)
                current_node = context.get_or_create_child(
                    current_node, step_key, factory)
                chain_nodes.append(current_node)
                current_class = range_class
            else:
                # A DVA: multi-valued ones get their own range variable;
                # single-valued ones terminate the chain.
                if not is_last:
                    raise QualificationError(
                        f"{step.name!r} is not an EVA; it cannot be "
                        f"qualified through").with_code("SIM101")
                if attr.multi_valued:
                    step_key = ("mvdva", attr.owner_name, attr.name)

                    def factory(attr=attr, parent=current_node,
                                step_key=step_key):
                        return QTNode("mvdva", context.scope_id,
                                      parent=parent, mv_attr=attr,
                                      step_key=step_key)
                    current_node = context.get_or_create_child(
                        current_node, step_key, factory)
                    chain_nodes.append(current_node)
                else:
                    terminal_attr = attr
                    terminal_view = step.as_class
        return chain_nodes, terminal_attr, terminal_view, None

    def _transitive_node(self, step, current_node, current_class: str,
                         context: _ScopeContext):
        """Resolve TRANSITIVE(<eva> {of <eva>}) — §4.7's cyclic EVA chain.

        The chain is written qualification-style (innermost attribute
        first), so the hops apply in reverse written order; the composite
        hop must lead back into the starting class's hierarchy so it can
        repeat.
        """
        graph = self.schema.graph
        chain_names = step.transitive_chain or (step.name,)
        hop_evas = []
        hop_class = current_class
        for name in reversed(chain_names):
            sim_class = self.schema.get_class(hop_class)
            if not sim_class.has_attribute(name):
                raise QualificationError(
                    f"class {hop_class!r} has no attribute {name!r} in "
                    f"transitive chain").with_code("SIM101")
            attr = sim_class.attribute(name)
            if not attr.is_eva:
                raise QualificationError(
                    f"TRANSITIVE needs EVAs, got {name!r}").with_code("SIM101")
            hop_evas.append(attr)
            hop_class = attr.range_class_name
        if not (graph.is_ancestor(hop_class, current_class)
                or graph.is_ancestor(current_class, hop_class)):
            raise QualificationError(
                f"transitive({' of '.join(chain_names)}) is not cyclic "
                f"from {current_class!r}").with_code("SIM101")
        step_key = ("transitive", chain_names, step.as_class)
        range_class = hop_class
        if step.as_class is not None:
            self._check_role_conversion(range_class, step.as_class)
            range_class = step.as_class

        def factory(parent=current_node, step_key=step_key,
                    range_class=range_class):
            node = QTNode("eva", context.scope_id, parent=parent,
                          class_name=range_class, eva=hop_evas[-1],
                          as_class=step.as_class, transitive=True,
                          step_key=step_key)
            node.transitive_evas = list(hop_evas)
            return node
        node = context.get_or_create_child(current_node, step_key, factory)
        return node, range_class

    def _attach_derived(self, anchor_node, derived, context: _ScopeContext):
        """Resolve a derived attribute's expression in a fresh scope
        anchored at the node it is read from (paper §6)."""
        expression = parse_expression(derived.expression_text)
        scope_id = context.tree.new_scope()
        scope = _ScopeContext(self, context.tree, scope_id,
                              parent=context)
        scope.forced_anchor = anchor_node
        self._resolve_expression(expression, scope, in_target=None)
        derived_resolution = (expression, list(scope.nodes))
        self._last_derived_resolution = derived_resolution
        return derived_resolution
