"""Physical design tuning: measuring the §5.2 mapping options.

"The mapping of EVAs is the key factor in determining SIM's performance."

This example builds the same 1:many workload under each EVA mapping —
common structure, dedicated structure, clustered, pointer — and under both
hierarchy mappings, then reports cold-cache block I/O for the same
traversal query, exactly the terms the paper's §5.1/§5.2 cost discussion
uses.

Run:  python examples/physical_tuning.py
"""

from repro import Database, EvaMapping, HierarchyMapping, PhysicalDesign
from repro.workloads import (
    fanout_schema,
    hierarchy_chain_schema,
    populate_fanout,
    populate_hierarchy_chain,
)


def eva_mapping_comparison(owners=40, fanout=12):
    print(f"== EVA mapping comparison ({owners} owners x {fanout} members,"
          f" cold cache) ==")
    print(f"{'mapping':<12} {'logical':>8} {'physical':>9}")
    for mapping in (EvaMapping.COMMON, EvaMapping.DEDICATED,
                    EvaMapping.CLUSTERED, EvaMapping.POINTER):
        schema = fanout_schema()
        design = PhysicalDesign(schema, pool_capacity=64)
        design.override_eva("owner", "members", mapping)
        db = Database(schema, design=design.finalize(),
                      constraint_mode="off", use_optimizer=False)
        populate_fanout(db, owners, fanout)
        db.cold_cache()
        db.reset_io_stats()
        result = db.query(
            "From owner Retrieve owner-key, member-key of members")
        stats = db.io_stats
        assert len(result) == owners * fanout
        print(f"{mapping.value:<12} {stats.logical_reads:>8}"
              f" {stats.physical_reads:>9}")
    print()


def hierarchy_mapping_comparison(depth=5, entities=60):
    print(f"== Hierarchy mapping comparison (depth {depth}, "
          f"{entities} entities, cold cache) ==")
    print("query: read an inherited level-0 attribute from the leaf class")
    print(f"{'mapping':<18} {'logical':>8} {'physical':>9}")
    for mapping in (HierarchyMapping.VARIABLE_FORMAT,
                    HierarchyMapping.SEPARATE_UNITS):
        schema = hierarchy_chain_schema(depth)
        design = PhysicalDesign(schema, pool_capacity=64,
                                default_hierarchy=mapping)
        db = Database(schema, design=design.finalize(),
                      constraint_mode="off", use_optimizer=False)
        populate_hierarchy_chain(db, depth, entities)
        db.cold_cache()
        db.reset_io_stats()
        leaf = f"level{depth - 1}"
        result = db.query(f"From {leaf} Retrieve data0, data{depth - 1}")
        stats = db.io_stats
        assert len(result) == entities
        print(f"{mapping.value:<18} {stats.logical_reads:>8}"
              f" {stats.physical_reads:>9}")
    print()


def design_report():
    print("== The default design for the UNIVERSITY schema ==")
    from repro.workloads import UNIVERSITY_DDL
    db = Database(UNIVERSITY_DDL)
    print(db.design.describe())


def main():
    eva_mapping_comparison()
    hierarchy_mapping_comparison()
    design_report()


if __name__ == "__main__":
    main()
