"""Concurrent sessions: strict two-phase locking over one database.

The paper's SIM relies on DMSII for transaction management and claims
support for "very high transaction processing rates" (§5); this
reproduction's substrate provides multi-session isolation with class-
granularity strict 2PL.  Two registrar clerks work the same database;
conflicting statements fail fast with LockConflict instead of silently
interleaving.

Run:  python examples/concurrent_sessions.py
"""

from repro import Database, LockConflict, Session
from repro.workloads import UNIVERSITY_DDL


def main():
    db = Database(UNIVERSITY_DDL, constraint_mode="off")
    db.execute('Insert course(course-no := 1, title := "Mechanics",'
               ' credits := 6)')
    db.execute('Insert department(dept-nbr := 100, name := "Physics")')

    alice = Session(db)
    bob = Session(db)

    print("Alice updates Mechanics (transaction stays open)...")
    alice.execute('Modify course(credits := 8) Where course-no = 1')
    print("  Alice holds:", alice.holdings())

    print("Bob tries to read courses:")
    try:
        bob.query("From course Retrieve title, credits")
    except LockConflict as exc:
        print(f"  blocked -> {exc}")

    print("Bob works on departments instead (disjoint classes):")
    bob.execute('Modify department(name := "Physics & Astronomy")'
                ' Where dept-nbr = 100')
    print("  Bob holds:", bob.holdings())

    print("Alice commits; Bob can now read the new value:")
    alice.commit()
    print(" ", bob.query("From course Retrieve title, credits").rows)
    bob.commit()

    print("\nLost-update prevention:")
    alice.execute('Modify course(credits := 1 + credits)'
                  ' Where course-no = 1')
    try:
        bob.execute('Modify course(credits := 1 + credits)'
                    ' Where course-no = 1')
    except LockConflict:
        print("  Bob's concurrent increment is rejected, not lost")
    alice.commit()
    bob.execute('Modify course(credits := 1 + credits)'
                ' Where course-no = 1')
    bob.commit()
    print("  final credits:",
          db.query("From course Retrieve credits").scalar(),
          "(8 + 1 + 1: both increments applied, serially)")

    print("\nAbort isolates:")
    alice.execute('Insert course(course-no := 2, title := "Phantom",'
                  ' credits := 1)')
    alice.abort()
    print("  courses after Alice's abort:",
          db.query("From course Retrieve title").column(0))


if __name__ == "__main__":
    main()
