"""Concurrent sessions: blocking 2PL, MVCC snapshot reads, deadlocks.

The paper's SIM relies on DMSII for transaction management and claims
support for "very high transaction processing rates" (§5); this
reproduction's substrate provides multi-session isolation with class-
granularity strict two-phase locking.  Writers block (with deadlock
detection) instead of failing fast, and Retrieves run against an MVCC
snapshot — readers never wait on writers.  ``Session(db, mvcc=False,
lock_timeout=0)`` restores the original fail-fast shared-lock mode.

Run:  python examples/concurrent_sessions.py
"""

import threading

from repro import Database, DeadlockError, LockConflict, Session
from repro.workloads import UNIVERSITY_DDL


def main():
    db = Database(UNIVERSITY_DDL, constraint_mode="off")
    db.execute('Insert course(course-no := 1, title := "Mechanics",'
               ' credits := 6)')
    db.execute('Insert department(dept-nbr := 100, name := "Physics")')

    alice = Session(db)
    bob = Session(db)

    print("Alice updates Mechanics (transaction stays open)...")
    alice.execute('Modify course(credits := 8) Where course-no = 1')
    print("  Alice holds:", alice.holdings())

    print("Bob reads courses anyway — MVCC snapshot, no locks taken:")
    print(" ", bob.query("From course Retrieve title, credits").rows,
          "<- the pre-image; Alice has not committed")

    print("Alice commits; Bob's next snapshot sees the new value:")
    alice.commit()
    print(" ", bob.query("From course Retrieve title, credits").rows)

    print("\nLost-update prevention (writers serialize on class locks):")
    alice.execute('Modify course(credits := 1 + credits)'
                  ' Where course-no = 1')

    def bob_increments():
        # Blocks until Alice commits, then applies on top of her write.
        bob.execute('Modify course(credits := 1 + credits)'
                    ' Where course-no = 1')
        bob.commit()

    worker = threading.Thread(target=bob_increments)
    worker.start()
    alice.commit()
    worker.join()
    print("  final credits:",
          db.query("From course Retrieve credits").scalar(),
          "(8 + 1 + 1: both increments applied, serially)")

    print("\nLegacy fail-fast mode (mvcc=False, lock_timeout=0):")
    carol = Session(db, mvcc=False, lock_timeout=0)
    dave = Session(db, mvcc=False, lock_timeout=0)
    carol.execute('Modify course(credits := 5) Where course-no = 1')
    try:
        dave.query("From course Retrieve title")
    except LockConflict as exc:
        print(f"  Dave's read fails fast -> {exc}")
    carol.abort()

    print("\nDeadlock detection (opposite lock orders):")
    erin = Session(db)
    frank = Session(db)
    erin.execute('Modify course(credits := 9) Where course-no = 1')
    frank.execute('Modify department(name := "Physics & Astronomy")'
                  ' Where dept-nbr = 100')
    outcome = {}

    def frank_wants_courses():
        try:
            frank.execute('Modify course(credits := 2) Where course-no = 1')
            frank.commit()
            outcome["frank"] = "committed"
        except DeadlockError:
            outcome["frank"] = "chosen as deadlock victim, aborted"

    worker = threading.Thread(target=frank_wants_courses)
    worker.start()
    try:
        # Erin now wants departments: a cycle.  The waits-for graph
        # detects it and aborts the younger session.
        erin.execute('Modify department(name := "Physics")'
                     ' Where dept-nbr = 100')
        erin.commit()
        outcome["erin"] = "committed"
    except DeadlockError:
        erin.abort()
        outcome["erin"] = "chosen as deadlock victim, aborted"
    worker.join()
    for name, what in sorted(outcome.items()):
        print(f"  {name}: {what}")
    print("  lock-manager stats:", db._lock_manager.statistics())


if __name__ == "__main__":
    main()
