"""DMSII evolution: viewing a network-model database as SIM (paper §5).

An "existing" inventory application lives in a network-model database —
record types connected by owner/member sets, with a foreign-key field the
network schema cannot express as a relationship.  The import utility views
it as a SIM database: record types become classes, sets become EVA pairs,
and the user hint promotes the foreign key to an EVA, after which SIM DML
(including qualification through the new EVAs) works directly.

Run:  python examples/dmsii_migration.py
"""

from repro.interfaces import (
    NetworkDatabase,
    NetworkRecordType,
    NetworkSet,
    import_network_database,
)


def build_legacy_database() -> NetworkDatabase:
    net = NetworkDatabase("inventory")
    net.add_record_type(NetworkRecordType(
        "warehouse",
        {"wh-id": "integer", "city": "string[20]", "sqft": "integer"},
        key_field="wh-id"))
    net.add_record_type(NetworkRecordType(
        "bin",
        {"bin-id": "integer", "aisle": "integer", "capacity": "integer"},
        key_field="bin-id"))
    net.add_record_type(NetworkRecordType(
        "item",
        {"item-id": "integer", "descr": "string[30]", "qty": "integer",
         "wh": "integer"},       # <- foreign key the network model hides
        key_field="item-id"))
    net.add_set(NetworkSet("wh-bins", "warehouse", "bin"))

    warehouses = [net.store("warehouse", {"wh-id": 1, "city": "Irvine",
                                          "sqft": 90000}),
                  net.store("warehouse", {"wh-id": 2, "city": "Detroit",
                                          "sqft": 40000})]
    for bin_id, (wh, aisle, cap) in enumerate(
            [(0, 1, 50), (0, 2, 70), (1, 1, 30)], start=100):
        member = net.store("bin", {"bin-id": bin_id, "aisle": aisle,
                                   "capacity": cap})
        net.connect("wh-bins", warehouses[wh], member)
    for item_id, (descr, qty, wh) in enumerate(
            [("widget", 500, 1), ("sprocket", 120, 2),
             ("gear", 640, 2), ("flange", 75, 1)], start=10):
        net.store("item", {"item-id": item_id, "descr": descr,
                           "qty": qty, "wh": wh})
    return net


def main():
    legacy = build_legacy_database()
    print("== Legacy network database ==")
    for type_name in legacy.record_types:
        print(f"  {type_name}: {len(legacy.records(type_name))} records")
    print("  sets:", ", ".join(legacy.sets))

    print("\n== Importing as a SIM database ==")
    print("user hint: item.wh is a foreign key referencing warehouse")
    db = import_network_database(
        legacy,
        foreign_keys={("item", "wh"): "warehouse"},
    )
    print("resulting schema:")
    print(db.schema.ddl())

    print("\n== SIM DML over the migrated data ==")
    queries = [
        # The promoted foreign key is now an EVA: qualify through it.
        'From item Retrieve descr, qty, city of wh Order By descr',
        # The network set became an EVA pair on both sides.
        'From warehouse Retrieve city, count(wh-bins-members) of warehouse',
        # Inverse direction of the promoted key.
        'From warehouse Retrieve city, count(wh-of) of warehouse',
        # A join the network application would have hand-coded.
        'From item Retrieve descr'
        ' Where count(wh-bins-members) of wh >= 2',
    ]
    for text in queries:
        print(f"-- {text}")
        print(db.query(text).pretty(), "\n")


if __name__ == "__main__":
    main()
