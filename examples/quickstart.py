"""Quickstart: the UNIVERSITY database of the paper, end to end.

Defines the §7 schema, inserts the paper's worked examples through SIM
DML, and runs the queries from §4 — including the outer-join behaviour of
the perspective semantics, transitive closure and aggregates.

Run:  python examples/quickstart.py
"""

from repro import Database
from repro.workloads import UNIVERSITY_DDL


def main():
    db = Database(UNIVERSITY_DDL, constraint_mode="off")

    print("== Loading the UNIVERSITY database (paper section 7) ==")
    statements = [
        'Insert department(dept-nbr := 100, name := "Physics")',
        'Insert department(dept-nbr := 200, name := "Math")',
        'Insert instructor(name := "Joe Bloke", soc-sec-no := 111223333,'
        ' employee-nbr := 1729, salary := 50000,'
        ' assigned-department := department with (name = "Physics"))',
        'Insert instructor(name := "Jane Roe", soc-sec-no := 222334444,'
        ' employee-nbr := 1730, salary := 60000, bonus := 5000,'
        ' assigned-department := department with (name = "Math"))',
        'Insert course(course-no := 101, title := "Algebra I",'
        ' credits := 3)',
        'Insert course(course-no := 102, title := "Calculus I",'
        ' credits := 4)',
        'Insert course(course-no := 201,'
        ' title := "Quantum Chromodynamics", credits := 5)',
        'Modify course(prerequisites := include course with'
        ' (title = "Algebra I")) Where title = "Calculus I"',
        'Modify course(prerequisites := include course with'
        ' (title = "Calculus I")) Where title = "Quantum Chromodynamics"',
        # Paper example 1: insert John Doe and enroll him in Algebra I.
        'Insert student(name := "John Doe", soc-sec-no := 456887766,'
        ' courses-enrolled := course with (title = "Algebra I"),'
        ' advisor := instructor with (name = "Joe Bloke"))',
        'Insert student(name := "Lone Wolf", soc-sec-no := 999887766)',
        # Paper example 2: make John Doe an instructor too.
        'Insert instructor From person Where name = "John Doe"'
        ' (employee-nbr := 1731)',
    ]
    for statement in statements:
        db.execute(statement)
    print(f"loaded; schema statistics: {db.schema.statistics()}\n")

    def show(title, text):
        print(f"-- {title}")
        print(f"   {' '.join(text.split())}")
        print(db.query(text).pretty(), "\n")

    show("The paper's first query (outer join: Lone Wolf gets a null "
         "advisor)",
         "From Student Retrieve Name, Name of Advisor")

    show("Shorthand qualification: 'Salary' completes to salary of "
         "advisor",
         "From Student Retrieve Name of Advisor, Salary")

    show("Subroles: which roles does each person hold?",
         "From person Retrieve name, profession")

    show("Transitive closure (paper example 5)",
         'Retrieve Title of Transitive(prerequisites) of Course'
         ' Where Title of Course = "Quantum Chromodynamics"')

    show("Aggregates with delimited scope (paper section 4.6)",
         "From Department Retrieve name,"
         " AVG(Salary of Instructors-employed) of Department")

    print("-- Update: John drops Algebra I (paper example 3)")
    db.execute('Modify student('
               ' courses-enrolled := exclude courses-enrolled with'
               ' (title = "Algebra I"))'
               ' Where name of student = "John Doe"')
    show("...afterwards",
         "From student Retrieve name,"
         " count(courses-enrolled) of student")

    print("-- Delete semantics: deleting the STUDENT role keeps PERSON")
    db.execute('Delete student Where name = "John Doe"')
    show("John is still a person (and an instructor)",
         'From person Retrieve name, profession Where name = "John Doe"')

    print("-- The optimizer's report for a selective query")
    print(db.explain(
        "From person Retrieve name Where soc-sec-no = 999887766"))


if __name__ == "__main__":
    main()
