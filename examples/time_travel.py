"""Temporal data (paper §6): tracking and querying attribute history.

The paper lists "temporal data" among SIM's work-in-progress extensions.
Opened with ``track_history=True``, a database journals every attribute
and role change against a logical clock (one tick per update statement),
so past states can be reconstructed: salaries before a raise, a student's
course list mid-semester, or when an entity acquired a role.

Run:  python examples/time_travel.py
"""

from repro import Database
from repro.workloads import UNIVERSITY_DDL


def main():
    db = Database(UNIVERSITY_DDL, constraint_mode="off",
                  track_history=True)

    # --- Build up state over several logical instants ----------------------
    db.execute('Insert department(dept-nbr := 100, name := "Physics")')
    db.execute('Insert course(course-no := 101, title := "Mechanics",'
               ' credits := 6)')
    db.execute('Insert course(course-no := 102, title := "Optics",'
               ' credits := 6)')
    db.execute('Insert instructor(name := "Prof", soc-sec-no := 1,'
               ' employee-nbr := 1001, salary := 50000)')
    hired_at = db.clock
    print(f"t{hired_at}: Prof hired at 50000")

    db.execute('Modify instructor(salary := 1.1 * salary)'
               ' Where name = "Prof"')
    first_raise = db.clock
    print(f"t{first_raise}: first raise")
    db.execute('Modify instructor(salary := 1.2 * salary)'
               ' Where name = "Prof"')
    print(f"t{db.clock}: second raise")

    prof = db.query('From instructor Retrieve instructor'
                    ' Where name = "Prof"').scalar()

    print("\nSalary history:")
    for event in db.attribute_history(prof, "salary"):
        print("  ", event.describe())
    print("salary as hired:  ",
          db.value_as_of(prof, "instructor", "salary", hired_at))
    print("after first raise:",
          db.value_as_of(prof, "instructor", "salary", first_raise))
    print("today:            ",
          db.query('From instructor Retrieve salary'
                   ' Where name = "Prof"').scalar())

    # --- Relationship history ----------------------------------------------
    db.execute('Insert student(name := "Sam", soc-sec-no := 2,'
               ' courses-enrolled := course with (title = "Mechanics"))')
    sam = db.query('From student Retrieve student'
                   ' Where name = "Sam"').scalar()
    enrolled_at = db.clock
    db.execute('Modify student(courses-enrolled := include course with'
               ' (title = "Optics")) Where name = "Sam"')
    both_at = db.clock
    db.execute('Modify student(courses-enrolled := exclude'
               ' courses-enrolled with (title = "Mechanics"))'
               ' Where name = "Sam"')

    def titles(surrogates):
        if not surrogates:
            return "(nothing)"
        by_surrogate = dict(
            db.query("From course Retrieve course, title").rows)
        return ", ".join(by_surrogate[s] for s in sorted(surrogates))

    print("\nSam's enrolment over time:")
    for tick, label in [(enrolled_at, "at enrolment"),
                        (both_at, "after adding Optics"),
                        (db.clock, "after dropping Mechanics")]:
        values = db.value_as_of(sam, "student", "courses-enrolled", tick)
        print(f"  t{tick} ({label}): {titles(values)}")

    # --- Role history -------------------------------------------------------
    db.execute('Insert instructor From person Where name = "Sam"'
               ' (employee-nbr := 1002)')
    print("\nSam's roles:")
    for event in db.role_history(sam):
        print("  ", event.describe())
    print("was Sam an instructor at enrolment time?",
          db.had_role_at(sam, "instructor", enrolled_at))
    print("and now?", db.had_role_at(sam, "instructor", db.clock))


if __name__ == "__main__":
    main()
