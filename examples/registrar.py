"""Registrar workflow: transactions and VERIFY integrity enforcement.

A registration clerk enrolls students under the paper's V1 constraint
("sum(credits of courses-enrolled) >= 12") and V2 ("salary + bonus <
100000"), showing:

* immediate mode — a violating statement rolls back by itself;
* deferred mode — a transaction may pass through invalid intermediate
  states as long as COMMIT sees a consistent database;
* trigger detection — changing a course's CREDITS re-checks exactly the
  students enrolled in it.

Run:  python examples/registrar.py
"""

from repro import ConstraintViolation, Database
from repro.workloads import UNIVERSITY_DDL


def build(mode):
    db = Database(UNIVERSITY_DDL, constraint_mode=mode)
    db.execute('Insert department(dept-nbr := 100, name := "Physics")')
    for number, title, credits in [(101, "Mechanics", 6),
                                   (102, "Optics", 6),
                                   (103, "Seminar", 2)]:
        db.execute(f'Insert course(course-no := {number},'
                   f' title := "{title}", credits := {credits})')
    return db


def immediate_mode():
    print("== Immediate checking ==")
    db = build("immediate")

    print("Enrolling Ada in Mechanics + Optics (12 credits): ", end="")
    db.execute('Insert student(name := "Ada", soc-sec-no := 1,'
               ' courses-enrolled := course with (credits = 6))')
    print("accepted")

    print("Enrolling Bob in just the Seminar (2 credits):     ", end="")
    try:
        db.execute('Insert student(name := "Bob", soc-sec-no := 2,'
                   ' courses-enrolled := course with'
                   ' (title = "Seminar"))')
    except ConstraintViolation as exc:
        print(f"rejected -> {exc.user_message}")
    print("Students now:", db.query("From student Retrieve name").column(0))

    print("Shrinking Mechanics to 3 credits (Ada would drop to 9): ",
          end="")
    try:
        db.execute('Modify course(credits := 3)'
                   ' Where title = "Mechanics"')
    except ConstraintViolation as exc:
        print(f"rejected -> {exc.user_message}")
    print("Trigger statistics:", db.constraints.statistics())
    print()


def deferred_mode():
    print("== Deferred checking (repair before commit) ==")
    db = build("deferred")
    with db.transaction():
        # Temporarily invalid: a brand-new student has 0 credits.
        db.execute('Insert student(name := "Cleo", soc-sec-no := 3)')
        print("inside transaction: Cleo enrolled in nothing yet")
        db.execute('Modify student(courses-enrolled := include course'
                   ' with (credits = 6)) Where name = "Cleo"')
        print("inside transaction: Cleo repaired to 12 credits")
    print("committed; Cleo's credits:",
          db.query('From student Retrieve sum(credits of courses-enrolled)'
                   ' of student Where name = "Cleo"').scalar())

    print("An unrepaired transaction fails at COMMIT and rolls back:")
    try:
        with db.transaction():
            db.execute('Insert student(name := "Dan", soc-sec-no := 4)')
    except ConstraintViolation as exc:
        print(f"  commit rejected -> {exc.user_message}")
    print("  students now:",
          db.query("From student Retrieve name").column(0))
    print()


def salary_cap():
    print("== V2: the salary cap ==")
    db = build("immediate")
    db.execute('Insert instructor(name := "Prof", soc-sec-no := 9,'
               ' employee-nbr := 1001, salary := 80000, bonus := 10000)')
    print("Doubling Prof's salary: ", end="")
    try:
        db.execute('Modify instructor(salary := 2 * salary)'
                   ' Where name = "Prof"')
    except ConstraintViolation as exc:
        print(f"rejected -> {exc.user_message}")
    print("salary is unchanged:",
          db.query('From instructor Retrieve salary'
                   ' Where name = "Prof"').scalar())


def main():
    immediate_mode()
    deferred_mode()
    salary_cap()


if __name__ == "__main__":
    main()
