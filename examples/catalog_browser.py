"""Browsing the Directory: the catalog is itself a SIM database (§6).

The paper notes that ADDS, the data dictionary, "is itself a SIM
database".  Here the UNIVERSITY schema is loaded into the meta-schema and
explored with ordinary SIM DML — then the IQF-style session does the same
interactively.

Run:  python examples/catalog_browser.py
"""

from repro import parse_ddl
from repro.directory import build_catalog
from repro.interfaces import run_script
from repro.workloads import UNIVERSITY_DDL


def main():
    schema = parse_ddl(UNIVERSITY_DDL)
    catalog = build_catalog(schema)

    queries = [
        ("Base classes",
         "From db-class Retrieve name, subclass-count"
         " Where is-base = true Order By name"),
        ("The generalization DAG",
         "From db-class Retrieve name, name of superclasses"
         " Order By name"),
        ("Multi-valued EVAs and their bounds",
         'From db-attribute Retrieve name of owner, name, max-cardinality'
         ' Where kind = "eva" and mv = true Order By name of owner, name'),
        ("Inverse pairs",
         'From db-attribute Retrieve name, name of inverse-attr'
         ' Where kind = "eva" Order By name'),
        ("Integrity constraints",
         "From db-constraint Retrieve name, name of on-class, message"),
        ("Attribute counts per class",
         "From db-class Retrieve name, count(attributes) of db-class"
         " Order By name"),
    ]
    for title, text in queries:
        print(f"== {title} ==")
        print(catalog.query(text).pretty(), "\n")

    print("== The same catalog through an IQF session ==")
    print(run_script(catalog, """
.classes
From db-class Retrieve name Where level = 2;
"""))


if __name__ == "__main__":
    main()
