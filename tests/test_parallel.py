"""Morsel-parallel execution: row identity, knobs, thread safety, and
the storage-layer performance fixes that make the parallel read path
safe and scalable (buffer-pool eviction, bulk-load block choice)."""

from __future__ import annotations

import threading
import time

import pytest

from repro import parse_dml
from repro.database import Database
from repro.engine import operators as ops
from repro.engine.parallel import (
    DEFAULT_PARALLELISM,
    MAX_PARALLELISM,
    Parallel,
    validate_parallelism,
)
from repro.errors import SimError, StorageError
from repro.interfaces.iqf import run_script
from repro.optimizer.physical_plan import lower_plan
from repro.storage.buffer import BufferPool, Disk
from repro.storage.files import RecordFile
from repro.storage.records import RecordFormat
from repro.workloads import UNIVERSITY_DDL, build_university
from repro.workloads.generators import (
    populate_scale,
    scale_queries,
    scale_schema,
)
from repro.workloads.university import UNIVERSITY_QUERIES

#: Order By queries with NULL keys both directions: students without an
#: advisor produce NULL advisor names (TYPE 3 dummy), and the §5.1 sort
#: contract places NULLs last under Asc and Desc alike — a morsel merge
#: that perturbed row order would break these first.
ORDERED_QUERIES = [
    "From student Retrieve name, name of advisor Order By name of advisor",
    "From student Retrieve name, name of advisor"
    " Order By name of advisor Desc",
]

ALL_QUERIES = UNIVERSITY_QUERIES + ORDERED_QUERIES


class TestRowIdentity:
    """Parallel execution must be row-identical to serial — same rows,
    same order — across worker counts and batch sizes."""

    @pytest.fixture(scope="class")
    def reference(self):
        database = build_university(seed=11)
        return database, {text: database.query(text).rows
                          for text in ALL_QUERIES}

    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    @pytest.mark.parametrize("batch_size", [1, 64])
    def test_university_sweep(self, reference, workers, batch_size):
        _, expected = reference
        subject = build_university(seed=11)
        subject.executor.parallelism = workers
        subject.executor.batch_size = batch_size
        for text in ALL_QUERIES:
            assert subject.query(text).rows == expected[text], text

    def test_scale_workload_sweep(self):
        serial = Database(scale_schema(3), constraint_mode="off")
        populate_scale(serial, 600, chain_depth=3)
        parallel = Database(scale_schema(3), constraint_mode="off")
        populate_scale(parallel, 600, chain_depth=3)
        for text in scale_queries(3):
            expected = serial.query(text).rows
            for workers in (2, 4, 8):
                parallel.executor.parallelism = workers
                assert parallel.query(text).rows == expected, \
                    f"{text} at {workers} workers"

    def test_serial_plan_has_no_parallel_operator(self):
        database = build_university(seed=11)
        query = parse_dml(UNIVERSITY_QUERIES[0])
        tree = database.qualifier.resolve_retrieve(query)
        physical = lower_plan(query, tree, None, database.executor)
        assert all(op.name != "Parallel" for op in physical.operators)

    def test_parallel_plan_wraps_selection_segment(self):
        database = build_university(seed=11)
        database.executor.parallelism = 4
        query = parse_dml(
            "From instructor Retrieve name Where salary > 0 Order By name")
        tree = database.qualifier.resolve_retrieve(query)
        physical = lower_plan(query, tree, None, database.executor)
        names = [op.name for op in physical.operators]
        assert names.count("Parallel") == 1
        barrier = names.index("Parallel")
        assert set(names[:barrier]) <= {"Scan", "EVATraverse",
                                        "OuterTraverse", "Filter", "Semi",
                                        "AntiSemi"}
        assert set(names[barrier + 1:]) <= {"Aggregate", "Project", "Sort",
                                            "Distinct"}


class TestParallelismKnob:
    def test_validate_bounds(self):
        assert validate_parallelism(1) == 1
        assert validate_parallelism(MAX_PARALLELISM) == MAX_PARALLELISM
        for bad in (0, -2, MAX_PARALLELISM + 1, True, "4", 2.5, None):
            with pytest.raises(SimError):
                validate_parallelism(bad)

    def test_database_ctor_plumbs_parallelism(self):
        database = Database(UNIVERSITY_DDL, constraint_mode="off",
                            parallelism=4)
        assert database.executor.parallelism == 4
        default = Database(UNIVERSITY_DDL, constraint_mode="off")
        assert default.executor.parallelism == DEFAULT_PARALLELISM

    def test_database_ctor_rejects_bad_parallelism(self):
        with pytest.raises(SimError):
            Database(UNIVERSITY_DDL, constraint_mode="off", parallelism=0)

    def test_iqf_set_shows_and_changes(self, small_university):
        transcript = run_script(small_university, ".set\n")
        assert f"parallelism: {DEFAULT_PARALLELISM}" in transcript
        assert "batch-size:" in transcript
        transcript = run_script(small_university, ".set parallelism 8\n")
        assert "parallelism set to 8" in transcript
        assert small_university.executor.parallelism == 8

    def test_iqf_set_rejects_out_of_bounds(self, small_university):
        transcript = run_script(small_university,
                                ".set parallelism 0\n"
                                ".set parallelism x\n")
        assert transcript.count("error:") == 2
        assert small_university.executor.parallelism == DEFAULT_PARALLELISM


class TestPlanVerification:
    def _physical(self, database, text):
        query = parse_dml(text)
        tree = database.qualifier.resolve_retrieve(query)
        return query, tree, lower_plan(query, tree, None, database.executor)

    def test_parallel_shape_verifies_clean(self):
        database = build_university(seed=11)
        database.executor.parallelism = 4
        from repro.analysis import verify_physical
        for text in UNIVERSITY_QUERIES:
            _, tree, physical = self._physical(database, text)
            errors = [d for d in verify_physical(database.schema, tree,
                                                 physical)
                      if d.severity == "error"]
            assert errors == [], text

    def test_sim208_rejects_consumer_below_barrier(self):
        database = build_university(seed=11)
        from repro.analysis import verify_physical
        _, tree, physical = self._physical(
            database, "From student Retrieve name Order By name")
        # Hand-build a broken shape: the barrier above the Sort.
        physical.root = Parallel(physical.root, 4)
        diagnostics = verify_physical(database.schema, tree, physical)
        assert any(d.code == "SIM208" for d in diagnostics)

    def test_sim208_rejects_nested_barriers(self):
        database = build_university(seed=11)
        database.executor.parallelism = 2
        from repro.analysis import verify_physical
        _, tree, physical = self._physical(
            database, "From student Retrieve name")
        barrier = next(op for op in physical.operators
                       if op.name == "Parallel")
        barrier.child = Parallel(barrier.child, 2)
        diagnostics = verify_physical(database.schema, tree, physical)
        assert any(d.code == "SIM208" for d in diagnostics)


class TestExplainAndCounters:
    def test_explain_analyze_reports_workers_and_morsels(self):
        database = build_university(seed=11)
        database.executor.parallelism = 4
        database.executor.batch_size = 4
        database.enable_tracing()
        result = database.query(UNIVERSITY_QUERIES[0])
        rendered = result.explain_analyze()
        assert "Parallel(workers<=4)" in rendered
        assert "workers=" in rendered
        assert "morsels=" in rendered

    def test_segment_counters_match_serial_totals(self):
        serial = build_university(seed=11)
        parallel = build_university(seed=11)
        parallel.executor.parallelism = 4
        parallel.executor.batch_size = 4
        text = "From student Retrieve name Where student-nbr > 2010"

        def segment_rows(database):
            query = parse_dml(text)
            tree = database.qualifier.resolve_retrieve(query)
            physical = lower_plan(query, tree, None, database.executor)
            database.executor.accessor.begin_query()
            ctx = ops.ExecContext(database.executor, physical)
            for batch in physical.root.run(ctx):
                pass
            return {op.name: (op.rows_in, op.rows_out)
                    for op in physical.operators
                    if op.name in ("Scan", "Filter")}

        # The per-worker clone counters merge back into the template
        # segment exactly once: row totals equal the serial run's.
        assert segment_rows(parallel) == segment_rows(serial)

    def test_result_perf_populated_under_parallelism(self):
        database = build_university(seed=11)
        database.executor.parallelism = 4
        database.executor.batch_size = 4
        database.cold_cache()
        result = database.query(
            "From student Retrieve name, title of courses-enrolled")
        perf = result.perf
        assert perf is not None
        assert perf.records_decoded > 0


class TestThreadSafetyHammer:
    """Concurrent readers over the shared storage layers: no KeyErrors,
    no corrupted LRU order, no lost counter bumps."""

    def test_buffer_pool_hammer(self):
        disk = Disk()
        pool = BufferPool(disk, capacity=8)
        blocks = 64
        errors = []

        def reader(seed):
            try:
                for step in range(400):
                    pool.get(1, (seed * 13 + step) % blocks)
            except BaseException as exc:      # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert pool.resident_blocks <= 8
        assert pool.stats.logical_reads == 8 * 400

    def test_read_cache_hammer(self):
        database = build_university(seed=11)
        cache = database.store.read_cache
        errors = []

        def prober(seed):
            try:
                for step in range(300):
                    surrogate = (seed * 7 + step) % 60
                    cache.get_record("student", surrogate)
                    cache.put_record("student", surrogate, None,
                                     {"step": step})
                    cache.get_fanout(1, True, surrogate)
                    cache.put_fanout(1, True, surrogate, (surrogate,))
                    if step % 50 == 0:
                        cache.invalidate_record("student", surrogate)
            except BaseException as exc:      # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=prober, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        sizes = cache.sizes
        assert sizes["records"] <= cache.record_capacity
        assert sizes["fanout"] <= cache.fanout_capacity

    def test_repeated_parallel_queries_are_stable(self):
        database = build_university(seed=11)
        database.executor.parallelism = 8
        database.executor.batch_size = 2
        expected = None
        for _ in range(5):
            rows = database.query(
                "From student Retrieve name, title of courses-enrolled"
                " Where credits of courses-enrolled > 3").rows
            if expected is None:
                expected = rows
            assert rows == expected

    def test_single_flight_collapses_concurrent_misses(self):
        disk = Disk(read_latency=0.005)
        pool = BufferPool(disk, capacity=16)
        results = []

        def reader():
            results.append(pool.get(1, 0))

        threads = [threading.Thread(target=reader) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 6
        # One loader performed the device read; the herd waited for it.
        assert pool.stats.physical_reads == 1


class TestBufferEvictionScaling:
    """The buffer pool's eviction is O(1) per miss regardless of pool
    size and scan length — a full LRU scan per eviction would make the
    10^5-block sweep quadratic."""

    def test_eviction_cost_is_flat_at_1e5_blocks(self):
        disk = Disk()

        def sweep(blocks, capacity):
            pool = BufferPool(disk, capacity=capacity)
            started = time.perf_counter()
            for block_no in range(blocks):
                pool.get(1, block_no)
            return time.perf_counter() - started

        small = max(sweep(10_000, 1_000), 1e-4)
        large = sweep(100_000, 10_000)
        # 10x the misses (and 10x the pool) must cost ~10x, not ~100x.
        # The generous 30x bound tolerates interpreter noise while still
        # failing any O(capacity)-per-eviction regression (~500x here).
        assert large / small < 30.0

    def test_mark_dirty_reinstalls_evicted_writer_frame(self):
        disk = Disk()
        pool = BufferPool(disk, capacity=1)
        block = pool.get(1, 0)
        block.slots.append((0, {"x": 1}))
        pool.get(1, 1)                 # concurrent reader evicts frame 0
        pool.mark_dirty(1, 0, block)   # writer reinstalls its image
        pool.flush()
        assert disk.read(1, 0).slots == [(0, {"x": 1})]

    def test_mark_dirty_without_block_still_raises(self):
        disk = Disk()
        pool = BufferPool(disk, capacity=1)
        pool.get(1, 0)
        pool.get(1, 1)
        with pytest.raises(StorageError):
            pool.mark_dirty(1, 0)


class TestBulkLoadBlockChoice:
    """`_choose_block`'s free-space hint: bulk loads are amortized O(1)
    per insert, and placement is identical to the plain first-fit scan."""

    def _file(self):
        pool = BufferPool(Disk(), capacity=64)
        record_file = RecordFile(9, "bulk", pool, block_size=256)
        record_file.register_format(RecordFormat(0, "narrow", {"v": 20}))
        record_file.register_format(RecordFormat(1, "wide", {"v": 100}))
        return record_file

    def test_bulk_load_is_linear(self):
        def load(count):
            record_file = self._file()
            started = time.perf_counter()
            for index in range(count):
                record_file.insert(0, {"v": index})
            return time.perf_counter() - started

        small = max(load(2_000), 1e-4)
        large = load(16_000)
        # 8x the inserts must cost ~8x; the O(n^2) scan would be ~64x.
        assert large / small < 24.0

    def test_placement_matches_plain_first_fit(self):
        hinted = self._file()
        reference = self._file()
        # Disable the hint's skip on the reference by forcing it huge, so
        # every insert walks the full first-fit scan.
        reference._free_hint = 10 ** 9

        import random
        rng = random.Random(42)
        hinted_rids, reference_rids = [], []
        live = []
        for step in range(600):
            action = rng.random()
            if action < 0.7 or not live:
                fmt = 0 if rng.random() < 0.8 else 1
                hinted_rids.append(hinted.insert(fmt, {"v": step}))
                reference_rids.append(reference.insert(fmt, {"v": step}))
                live.append(len(hinted_rids) - 1)
            else:
                victim = live.pop(rng.randrange(len(live)))
                hinted.delete(hinted_rids[victim])
                reference.delete(reference_rids[victim])
            # Reference stays exhaustive despite the failed-scan tighten.
            reference._free_hint = 10 ** 9
        assert hinted_rids == reference_rids

    def test_delete_reopens_block_for_reuse(self):
        record_file = self._file()
        rids = [record_file.insert(1, {"v": index}) for index in range(12)]
        blocks_before = record_file._block_count
        record_file.delete(rids[0])
        replacement = record_file.insert(1, {"v": 99})
        # The freed space is found again (no new block appended).
        assert replacement.block == rids[0].block
        assert record_file._block_count == blocks_before
