"""Tests for ``python -m repro lint`` (repro.analysis.cli)."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.analysis.cli import lint_files, main, split_statements
from repro.lexer import Span
from repro.workloads import UNIVERSITY_DDL

GOOD_DML = """\
From student Retrieve name, name of advisor;

From instructor Retrieve name
  Where salary > 50000;
.explain From student Retrieve name
From course Retrieve title
"""

BAD_DML = """\
From student Retrieve name Where salary;

From student Retrieve name Where name > 3;
"""

BAD_DDL = """\
Class a (
  x: integer;
  friend: b inverse is pal );
"""


class TestSplitStatements:
    def test_semicolon_blank_line_and_eof_terminate(self):
        statements = split_statements(GOOD_DML)
        assert [s for s, _ in statements] == [
            "From student Retrieve name, name of advisor;",
            "From instructor Retrieve name\n  Where salary > 50000;",
            "From course Retrieve title",
        ]

    def test_statements_carry_their_file_position(self):
        statements = split_statements(GOOD_DML)
        assert [base for _, base in statements] == [
            Span(1, 1), Span(3, 1), Span(6, 1)]

    def test_dot_commands_are_skipped(self):
        statements = split_statements(".schema\n.lint\n")
        assert statements == []


@pytest.fixture()
def schema_file(tmp_path):
    path = tmp_path / "university.ddl"
    path.write_text(UNIVERSITY_DDL)
    return str(path)


class TestLintMain:
    def test_clean_schema_and_queries_exit_zero(self, schema_file,
                                                tmp_path, capsys):
        dml = tmp_path / "queries.dml"
        dml.write_text(GOOD_DML)
        assert main([schema_file, str(dml)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_errors_exit_nonzero_with_coded_spans(self, schema_file,
                                                  tmp_path, capsys):
        dml = tmp_path / "bad.dml"
        dml.write_text(BAD_DML)
        assert main([schema_file, str(dml)]) == 1
        out = capsys.readouterr().out
        # path:line:col: CODE severity: message
        assert f"{dml}:1:34: SIM117 error:" in out
        assert f"{dml}:3:34: SIM112 error:" in out

    def test_schema_errors_reported_and_dml_skipped(self, tmp_path, capsys):
        ddl = tmp_path / "bad.ddl"
        ddl.write_text(BAD_DDL)
        dml = tmp_path / "q.dml"
        dml.write_text("From a Retrieve x;")
        assert main([str(ddl), str(dml)]) == 1
        out = capsys.readouterr().out
        assert "SIM010" in out
        assert "DML files not checked" in out

    def test_strict_promotes_warnings_to_failure(self, tmp_path, capsys):
        ddl = tmp_path / "one-sided.ddl"
        ddl.write_text("Class a ( friend: b inverse is pal );\n"
                       "Class b ( x: integer );\n")
        assert main([str(ddl)]) == 0
        assert main([str(ddl), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "SIM012 warning:" in out

    def test_no_notes_suppresses_info(self, schema_file, capsys):
        assert main([schema_file, "--no-notes"]) == 0
        out = capsys.readouterr().out
        assert "SIM011" not in out        # info hidden...
        assert "note(s)" in out           # ...but still counted

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.ddl")]) == 2

    def test_syntax_error_in_dml_file(self, schema_file, tmp_path, capsys):
        dml = tmp_path / "broken.dml"
        dml.write_text("From student Retrieve name Where >;")
        assert main([schema_file, str(dml)]) == 1
        out = capsys.readouterr().out
        assert "SIM100 error:" in out

    def test_lint_files_returns_path_diagnostic_pairs(self, schema_file):
        reported = lint_files(schema_file, [])
        assert all(path == schema_file for path, _ in reported)
        assert all(d.severity == "info" for _, d in reported)


class TestModuleEntryPoint:
    def test_python_m_repro_lint(self, schema_file):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "lint", schema_file],
            capture_output=True, text=True, check=False)
        assert completed.returncode == 0
        assert "0 error(s)" in completed.stdout
