"""The batched operator algebra: lowering, execution, and its knobs.

Covers the physical pipeline end to end — per-operator EXPLAIN ANALYZE
records over the whole UNIVERSITY workload, the TYPE 3 dummy-padding
golden rows, deterministic NULLS LAST ordering, result invariance across
batch sizes, the physical-DAG verifier (SIM205-207), the batched mapper
and accessor reads, the ordered-index range selection fast path, and the
``batch_size`` configuration surface (Database ctor and IQF ``.set``).
"""

from __future__ import annotations

import pytest

from repro import Database, PhysicalDesign, parse_ddl, parse_dml
from repro.engine import operators as ops
from repro.engine.operators import validate_batch_size
from repro.errors import PlanVerificationError, SimError
from repro.interfaces.iqf import run_script
from repro.optimizer.physical_plan import lower_plan
from repro.types.tvl import is_null
from repro.workloads import UNIVERSITY_DDL, UNIVERSITY_QUERIES, \
    build_university


class TestNullOrdering:
    def test_ascending_nulls_last(self, small_university):
        rows = small_university.query(
            "From person Retrieve name Order By birthdate").rows
        assert rows[0] == ("John Doe",)       # 1940 first
        assert rows[-1] == ("Lone Wolf",)     # null birthdate last

    def test_descending_nulls_still_last(self, small_university):
        rows = small_university.query(
            "From person Retrieve name Order By birthdate Desc").rows
        assert rows[0] == ("Jane Roe",)       # 1950 first when descending
        assert rows[-1] == ("Lone Wolf",)     # null stays last, not first

    def test_sort_key_total_order(self):
        null_key = ops._sort_key(None, False)
        value_key = ops._sort_key(3, False)
        assert value_key < null_key
        null_desc = ops._sort_key(None, True)
        value_desc = ops._sort_key(3, True)
        assert value_desc < null_desc


class TestType3Golden:
    """TYPE 3 target-only branches pad with the all-null dummy (§4.5)."""

    def test_missing_eva_yields_null_padded_row(self, small_university):
        rows = small_university.query(
            "From student Retrieve name, name of advisor").rows
        by_name = {row[0]: row[1] for row in rows}
        assert by_name["John Doe"] == "Joe Bloke"
        assert is_null(by_name["Lone Wolf"])   # no advisor: dummy padding

    def test_empty_mv_eva_yields_one_null_row(self, small_university):
        rows = small_university.query(
            "From student Retrieve name, title of courses-enrolled").rows
        wolf_rows = [row for row in rows if row[0] == "Lone Wolf"]
        assert len(wolf_rows) == 1
        assert is_null(wolf_rows[0][1])

    def test_chained_type3_dummies(self, small_university):
        # advisor is missing, so its department hop must stay null too.
        rows = small_university.query(
            "From student Retrieve name, name of assigned-department"
            " of advisor").rows
        by_name = {row[0]: row[1] for row in rows}
        assert by_name["John Doe"] == "Physics"
        assert is_null(by_name["Lone Wolf"])


class TestOperatorExplain:
    def test_every_university_query_reports_operators(self, university):
        university.enable_tracing()
        try:
            for text in UNIVERSITY_QUERIES:
                result = university.execute(text)
                rendered = result.explain_analyze()
                assert "op Scan(" in rendered, text
                assert "op Project(" in rendered, text
        finally:
            university.disable_tracing()

    def test_traversal_queries_report_traverse_operators(self, university):
        university.enable_tracing()
        try:
            rendered = university.execute(
                "From student Retrieve name, name of advisor"
            ).explain_analyze()
        finally:
            university.disable_tracing()
        assert "op OuterTraverse(" in rendered
        assert "[TYPE 3]" in rendered
        assert "batches=" in rendered

    def test_operator_records_carry_batch_counts(self, university):
        university.enable_tracing()
        try:
            result = university.execute("From student Retrieve name")
        finally:
            university.disable_tracing()
        execute = next(child for child in result.trace.children
                       if child.name == "execute")
        records = execute.attrs["operators"]
        scan = next(r for r in records if r["op"] == "Scan")
        assert scan["batches"] >= 1
        assert scan["rows_out"] == 40
        project = next(r for r in records if r["op"] == "Project")
        assert project["rows_in"] == project["rows_out"] == 40

    def test_batch_counters_accumulate(self, university):
        before = university.perf.as_dict()
        university.query("From student Retrieve name, name of advisor")
        after = university.perf.as_dict()
        assert after["batches_dispatched"] > before["batches_dispatched"]
        assert after["batch_rows"] > before["batch_rows"]


class TestBatchSizeInvariance:
    @pytest.mark.parametrize("size", [1, 3, 64, 4096])
    def test_rows_identical_across_batch_sizes(self, size):
        reference = build_university(seed=11)
        subject = build_university(seed=11)
        subject.executor.batch_size = size
        for text in UNIVERSITY_QUERIES:
            assert subject.query(text).rows == reference.query(text).rows, \
                text

    def test_memo_totals_do_not_depend_on_batch_size(self):
        small = build_university(seed=11)
        small.executor.batch_size = 2
        large = build_university(seed=11)
        large.executor.batch_size = 1024
        query = "From student Retrieve name, title of courses-enrolled"
        for database in (small, large):
            database.query(query)     # warm both equally
        counters = []
        for database in (small, large):
            perf = database.query(query).perf
            counters.append((perf.memo_hits, perf.memo_misses,
                             perf.records_decoded))
        assert counters[0] == counters[1]


class TestBatchedReads:
    def test_fetch_many_matches_record_of(self, small_university):
        store = small_university.store
        surrogates = list(store.scan_class("course"))
        records = store.fetch_many("course", surrogates + surrogates[:1])
        assert set(records) == set(surrogates)
        for surrogate in surrogates:
            assert records[surrogate] == store.record_of(surrogate, "course")

    def test_traverse_eva_batch_matches_eva_targets(self, small_university):
        store = small_university.store
        eva = small_university.schema.get_class("student") \
            .attribute("courses-enrolled")
        students = list(store.scan_class("student"))
        batched = store.traverse_eva_batch(students, eva)
        for surrogate in students:
            assert batched[surrogate] == store.eva_targets(surrogate, eva)

    def test_dva_batch_matches_dva(self, small_university):
        executor = small_university.executor
        accessor = executor.accessor
        attr = small_university.schema.get_class("course") \
            .attribute("credits")
        courses = list(small_university.store.scan_class("course"))
        instances = courses + [None] + courses[:1]
        assert accessor.dva_batch(attr, instances) == \
            [accessor.dva(instance, attr) for instance in instances]


class TestPhysicalVerifier:
    def _lowered(self, database, text):
        query = parse_dml(text)
        tree = database.qualifier.resolve_retrieve(query)
        physical = lower_plan(query, tree, None, database.executor)
        return query, tree, physical

    def test_good_dag_verifies_clean(self, small_university):
        from repro.analysis import verify_physical
        _, tree, physical = self._lowered(
            small_university, "From student Retrieve name, name of advisor")
        assert verify_physical(small_university.schema, tree, physical) == []

    def test_wrong_traverse_kind_is_sim207(self, small_university):
        from repro.analysis import verify_physical
        _, tree, physical = self._lowered(
            small_university, "From student Retrieve name, name of advisor")
        outer = next(op for op in physical.operators
                     if op.name == "OuterTraverse")
        inner = ops.EVATraverse(outer.node, outer.child)
        physical.root.child.child = inner   # Sortless: Project <- traverse
        codes = {d.code for d in verify_physical(
            small_university.schema, tree, physical)}
        assert "SIM207" in codes

    def test_missing_spine_node_is_sim205(self, small_university):
        from repro.analysis import verify_physical
        _, tree, physical = self._lowered(
            small_university, "From student Retrieve name, name of advisor")
        traverse = next(op for op in physical.operators
                        if op.name == "OuterTraverse")
        # Splice the traverse out: its node is never bound.
        parent = next(op for op in physical.operators
                      if op.child is traverse)
        parent.child = traverse.child
        codes = {d.code for d in verify_physical(
            small_university.schema, tree, physical)}
        assert "SIM205" in codes

    def test_type2_on_spine_is_sim206(self, small_university):
        from repro.analysis import verify_physical
        _, tree, physical = self._lowered(
            small_university,
            "From student Retrieve name"
            " Where credits of courses-enrolled > 3")
        semi = next(op for op in physical.operators if op.name == "Semi")
        exists_node = semi.nodes[0]
        # Enumerate the existential node as if it were a loop variable.
        physical.slots[exists_node.id] = physical.width
        physical.width += 1
        parent = next(op for op in physical.operators
                      if op.child is semi)
        parent.child = ops.EVATraverse(exists_node, semi)
        codes = {d.code for d in verify_physical(
            small_university.schema, tree, physical)}
        assert "SIM206" in codes

    def test_verifier_failure_is_fail_closed(self, monkeypatch,
                                             small_university):
        # Break the lowering so the executor's own verify call must raise.
        import repro.optimizer.physical_plan as pp

        original = pp.lower_plan

        def sabotage(query, tree, plan, executor):
            physical = original(query, tree, plan, executor)
            traverse = next((op for op in physical.operators
                             if op.name == "OuterTraverse"), None)
            if traverse is not None:
                parent = next(op for op in physical.operators
                              if op.child is traverse)
                parent.child = traverse.child
            return physical

        monkeypatch.setattr(pp, "lower_plan", sabotage)
        with pytest.raises(PlanVerificationError):
            small_university.query(
                "From student Retrieve name, name of advisor")


class TestFilterPushdown:
    def test_root_only_predicate_filters_before_traversal(
            self, small_university):
        from repro.analysis import verify_physical
        query = parse_dml(
            "Retrieve title of Transitive(prerequisites) of course"
            " Where course-no of course = 102")
        tree = small_university.qualifier.resolve_retrieve(query)
        physical = lower_plan(query, tree, None,
                              small_university.executor)
        names = [op.name for op in physical.operators]
        assert names.index("Filter") < names.index("OuterTraverse")
        # The pushed-down DAG still satisfies the structural contract.
        assert verify_physical(small_university.schema, tree,
                               physical) == []
        rows = small_university.query(
            "Retrieve title of Transitive(prerequisites) of course"
            " Where course-no of course = 102").rows
        assert rows == [("Algebra I",)]

    def test_quantified_predicate_is_not_pushed(self, small_university):
        query = parse_dml(
            "From instructor Retrieve name"
            " Where 3 = some(credits of courses-taught)")
        tree = small_university.qualifier.resolve_retrieve(query)
        physical = lower_plan(query, tree, None,
                              small_university.executor)
        names = [op.name for op in physical.operators]
        assert "Filter" not in names
        assert "Semi" in names


class TestRangeSelection:
    def _ordered_indexed_db(self):
        schema = parse_ddl(UNIVERSITY_DDL)
        design = PhysicalDesign(schema)
        design.add_value_index("course", "credits", kind="ordered")
        db = Database(schema, design=design, constraint_mode="off")
        for number, title, credits in [(101, "Algebra I", 3),
                                       (102, "Calculus I", 4),
                                       (201, "QCD", 5)]:
            db.execute(f'Insert course(course-no := {number}, '
                       f'title := "{title}", credits := {credits})')
        return db

    def test_range_predicate_uses_ordered_index(self):
        db = self._ordered_indexed_db()
        before = db.perf.as_dict()["index_selections"]
        affected = db.execute("Modify course(credits := 4)"
                              " Where credits > 4")
        assert affected == 1
        assert db.perf.as_dict()["index_selections"] == before + 1
        rows = db.query("From course Retrieve title, credits").rows
        assert ("QCD", 4) in rows

    def test_range_results_match_full_scan(self):
        indexed = self._ordered_indexed_db()
        plain = Database(UNIVERSITY_DDL, constraint_mode="off")
        for number, title, credits in [(101, "Algebra I", 3),
                                       (102, "Calculus I", 4),
                                       (201, "QCD", 5)]:
            plain.execute(f'Insert course(course-no := {number}, '
                          f'title := "{title}", credits := {credits})')
        for where in ("credits > 3", "credits >= 4", "credits < 5",
                      "credits >= 3 and credits < 5"):
            query = f"From course Retrieve title Where {where}"
            assert indexed.query(query).rows == plain.query(query).rows
        assert plain.perf.as_dict()["index_selections"] == 0

    def test_hash_index_does_not_serve_ranges(self):
        schema = parse_ddl(UNIVERSITY_DDL)
        design = PhysicalDesign(schema)
        design.add_value_index("course", "credits")        # hash (default)
        db = Database(schema, design=design, constraint_mode="off")
        db.execute('Insert course(course-no := 101, title := "A",'
                   ' credits := 3)')
        before = db.perf.as_dict()["index_selections"]
        db.execute("Modify course(credits := 2) Where credits > 1")
        assert db.perf.as_dict()["index_selections"] == before

    def test_ordered_kind_survives_save_load(self, tmp_path):
        db = self._ordered_indexed_db()
        path = str(tmp_path / "ordered.simdb")
        db.save(path)
        from repro.persistence import open_database
        loaded = open_database(path)
        assert loaded.design.value_index_kind("course", "credits") \
            == "ordered"
        before = loaded.perf.as_dict()["index_selections"]
        loaded.execute("Modify course(credits := 4) Where credits > 4")
        assert loaded.perf.as_dict()["index_selections"] == before + 1

    def test_bad_index_kind_rejected(self):
        schema = parse_ddl(UNIVERSITY_DDL)
        design = PhysicalDesign(schema)
        with pytest.raises(SimError):
            design.add_value_index("course", "credits", kind="btree")


class TestBatchSizeKnob:
    def test_validate_bounds(self):
        assert validate_batch_size(1) == 1
        assert validate_batch_size(65536) == 65536
        for bad in (0, -5, 65537, True, "64", 2.5, None):
            with pytest.raises(SimError):
                validate_batch_size(bad)

    def test_database_ctor_plumbs_batch_size(self):
        db = Database(UNIVERSITY_DDL, constraint_mode="off", batch_size=128)
        assert db.executor.batch_size == 128
        default = Database(UNIVERSITY_DDL, constraint_mode="off")
        assert default.executor.batch_size == ops.DEFAULT_BATCH_SIZE

    def test_database_ctor_rejects_bad_batch_size(self):
        with pytest.raises(SimError):
            Database(UNIVERSITY_DDL, constraint_mode="off", batch_size=0)

    def test_iqf_set_shows_and_changes(self, small_university):
        transcript = run_script(small_university, ".set\n")
        assert f"batch-size: {ops.DEFAULT_BATCH_SIZE}" in transcript
        transcript = run_script(small_university, ".set batch-size 256\n")
        assert "batch-size set to 256" in transcript
        assert small_university.executor.batch_size == 256

    def test_iqf_set_rejects_out_of_bounds(self, small_university):
        transcript = run_script(small_university,
                                ".set batch-size 0\n.set batch-size x\n")
        assert transcript.count("error:") == 2
        assert small_university.executor.batch_size \
            == ops.DEFAULT_BATCH_SIZE
