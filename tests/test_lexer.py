"""Lexer tests: hyphenated identifiers, comments, strings, ranges."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DMLSyntaxError
from repro.lexer import DECIMAL, EOF, IDENT, NUMBER, STRING, SYMBOL, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]


class TestIdentifiers:
    def test_hyphenated_identifier_is_one_token(self):
        assert kinds("soc-sec-no") == [(IDENT, "soc-sec-no")]

    def test_hyphen_before_digit_is_minus(self):
        assert kinds("x-1") == [(IDENT, "x"), (SYMBOL, "-"), (NUMBER, "1")]

    def test_spaced_minus_is_operator(self):
        assert kinds("salary - bonus") == [
            (IDENT, "salary"), (SYMBOL, "-"), (IDENT, "bonus")]

    def test_adjacent_letters_absorb_hyphen(self):
        # Documented consequence of the rule: unspaced letter-minus-letter
        # is a single identifier.
        assert kinds("salary-bonus") == [(IDENT, "salary-bonus")]

    def test_underscores_allowed(self):
        assert kinds("soc_sec_no") == [(IDENT, "soc_sec_no")]

    def test_trailing_hyphen_not_absorbed(self):
        assert kinds("abc- ") == [(IDENT, "abc"), (SYMBOL, "-")]


class TestNumbers:
    def test_integer(self):
        assert kinds("456887766") == [(NUMBER, "456887766")]

    def test_decimal(self):
        assert kinds("1.1") == [(DECIMAL, "1.1")]

    def test_range_operator_not_decimal(self):
        assert kinds("1001..39999") == [
            (NUMBER, "1001"), (SYMBOL, ".."), (NUMBER, "39999")]

    def test_dangling_point_rejected(self):
        with pytest.raises(DMLSyntaxError):
            tokenize("5.")


class TestStrings:
    def test_simple(self):
        assert kinds('"Algebra I"') == [(STRING, "Algebra I")]

    def test_doubled_quote_escape(self):
        assert kinds('"say ""hi"""') == [(STRING, 'say "hi"')]

    def test_unterminated(self):
        with pytest.raises(DMLSyntaxError):
            tokenize('"oops')

    def test_newline_in_string(self):
        with pytest.raises(DMLSyntaxError):
            tokenize('"line\nbreak"')


class TestCommentsAndSymbols:
    def test_paper_style_comment(self):
        assert kinds("a (* the schema diagram *) b") == [
            (IDENT, "a"), (IDENT, "b")]

    def test_unterminated_comment(self):
        with pytest.raises(DMLSyntaxError):
            tokenize("(* oops")

    def test_comment_tracks_line_numbers(self):
        tokens = tokenize("(* one\ntwo *)\nx")
        assert tokens[0].line == 3

    def test_assignment_symbol(self):
        assert kinds("a := 1") == [
            (IDENT, "a"), (SYMBOL, ":="), (NUMBER, "1")]

    def test_comparison_symbols(self):
        assert [k for k, _ in kinds("<= >= != <>")] == [SYMBOL] * 4

    def test_unexpected_character(self):
        with pytest.raises(DMLSyntaxError):
            tokenize("a @ b")

    def test_positions(self):
        tokens = tokenize("ab\n cd")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 2)

    def test_eof_token(self):
        assert tokenize("")[-1].kind == EOF


@given(st.lists(st.sampled_from(
    ["name", "of", "student", "advisor", ":=", "(", ")", ",", "123",
     '"text"', "<=", "and"]), min_size=0, max_size=30))
def test_lexing_never_crashes_on_token_soup(parts):
    text = " ".join(parts)
    tokens = tokenize(text)
    assert tokens[-1].kind == EOF
    # Every non-EOF token covers some of the input.
    assert len(tokens) - 1 <= len(parts)  # spaces prevent token merging
