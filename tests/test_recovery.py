"""Write-ahead logging and crash-recovery tests.

The substrate provides the durability DMSII gave SIM (paper §1): commit
forces the log and data pages; in-flight work is undone from before-
images; all volatile state (buffer pool, indexes, counters) rebuilds from
the disk image.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database
from repro.workloads import UNIVERSITY_DDL, build_university


@pytest.fixture()
def db():
    return Database(UNIVERSITY_DDL, constraint_mode="off")


class TestDurability:
    def test_committed_data_survives_crash(self, db):
        with db.transaction():
            db.execute('Insert person(name := "Durable", soc-sec-no := 1)')
        db.simulate_crash()
        assert db.query("From person Retrieve name").rows == [("Durable",)]

    def test_inflight_transaction_undone(self, db):
        with db.transaction():
            db.execute('Insert person(name := "Keep", soc-sec-no := 1)')
        db.begin()
        db.execute('Insert person(name := "Lose", soc-sec-no := 2)')
        db.store.pool.flush()   # steal: uncommitted pages reach disk
        db.simulate_crash()
        assert db.query("From person Retrieve name").rows == [("Keep",)]

    def test_unflushed_inflight_also_gone(self, db):
        db.begin()
        db.execute('Insert person(name := "Volatile", soc-sec-no := 1)')
        db.simulate_crash()
        assert db.query("From person Retrieve name").rows == []

    def test_update_before_images_restored(self, db):
        with db.transaction():
            db.execute('Insert course(course-no := 1, title := "T",'
                       ' credits := 3)')
        db.begin()
        db.execute('Modify course(credits := 9) Where course-no = 1')
        db.store.pool.flush()
        db.simulate_crash()
        assert db.query("From course Retrieve credits").scalar() == 3

    def test_deleted_entity_restored_on_crash(self, db):
        with db.transaction():
            db.execute('Insert person(name := "Phoenix", soc-sec-no := 1)')
        db.begin()
        db.execute('Delete person Where soc-sec-no = 1')
        db.store.pool.flush()
        db.simulate_crash()
        assert db.query("From person Retrieve name").rows == [("Phoenix",)]

    def test_aborted_transaction_stays_aborted(self, db):
        with db.transaction():
            db.execute('Insert person(name := "Base", soc-sec-no := 1)')
        db.begin()
        db.execute('Insert person(name := "Undone", soc-sec-no := 2)')
        db.abort()
        db.store.pool.flush()
        db.simulate_crash()
        assert db.query("From person Retrieve name").rows == [("Base",)]


class TestRebuild:
    def test_indexes_rebuilt(self, db):
        with db.transaction():
            db.execute('Insert person(name := "A", soc-sec-no := 42)')
        db.simulate_crash()
        # unique index works (lookup + duplicate rejection)
        assert db.query("From person Retrieve name"
                        " Where soc-sec-no = 42").rows == [("A",)]
        from repro.errors import UniquenessViolation
        with pytest.raises(UniquenessViolation):
            db.execute('Insert person(name := "B", soc-sec-no := 42)')

    def test_eva_indexes_rebuilt_both_directions(self, db):
        with db.transaction():
            db.execute('Insert instructor(name := "I", soc-sec-no := 1,'
                       ' employee-nbr := 1001)')
            db.execute('Insert student(name := "S", soc-sec-no := 2,'
                       ' advisor := instructor with (name = "I"))')
        db.simulate_crash()
        assert db.query('From student Retrieve name of advisor'
                        ).scalar() == "I"
        assert db.query('From instructor Retrieve count(advisees) of'
                        ' instructor').scalar() == 1

    def test_surrogate_generator_advances_past_recovered_data(self, db):
        with db.transaction():
            db.execute('Insert person(name := "A", soc-sec-no := 1)')
        db.simulate_crash()
        with db.transaction():
            db.execute('Insert person(name := "B", soc-sec-no := 2)')
        surrogates = [s for s in db.store.scan_class("person")]
        assert len(surrogates) == len(set(surrogates)) == 2

    def test_mv_dva_values_and_sequence_rebuilt(self):
        db = Database("""
            Class Doc ( k: integer unique required;
                        tags: string[8] mv );
        """, constraint_mode="off")
        with db.transaction():
            db.execute('Insert doc(k := 1)')
            db.execute('Modify doc(tags := include "a") Where k = 1')
            db.execute('Modify doc(tags := include "b") Where k = 1')
        db.simulate_crash()
        with db.transaction():
            db.execute('Modify doc(tags := include "c") Where k = 1')
        tags = db.query("From doc Retrieve tags Order By tags").column(0)
        assert tags == ["a", "b", "c"]

    def test_spouse_reflexive_eva_recovered(self, db):
        with db.transaction():
            db.execute('Insert person(name := "A", soc-sec-no := 1)')
            db.execute('Insert person(name := "B", soc-sec-no := 2)')
            db.execute('Modify person(spouse := person with (name = "B"))'
                       ' Where name = "A"')
        db.simulate_crash()
        rows = db.query("From person Retrieve name, name of spouse"
                        " Order By name").rows
        assert rows == [("A", "B"), ("B", "A")]

    def test_repeated_crashes(self, db):
        for round_no in range(3):
            with db.transaction():
                db.execute(f'Insert person(name := "P{round_no}",'
                           f' soc-sec-no := {round_no + 1})')
            db.simulate_crash()
        assert len(db.query("From person Retrieve name")) == 3

    def test_populated_university_survives(self):
        db = build_university(students=15, instructors=5, courses=10,
                              seed=3)
        before = db.query("From student Retrieve name,"
                          " count(courses-enrolled) of student").rows
        db.store.pool.flush()      # mapper-level population is autocommit
        db.simulate_crash()
        after = db.query("From student Retrieve name,"
                         " count(courses-enrolled) of student").rows
        assert before == after


class TestWalMechanics:
    def test_commit_forces_log(self, db):
        forces_before = db.store.wal.forces
        with db.transaction():
            db.execute('Insert person(name := "A", soc-sec-no := 1)')
        assert db.store.wal.forces > forces_before

    def test_wal_rule_on_eviction(self):
        from repro.mapper import MapperStore, PhysicalDesign
        from repro import parse_ddl
        schema = parse_ddl(UNIVERSITY_DDL)
        design = PhysicalDesign(schema, pool_capacity=1)
        store = MapperStore(schema, design.finalize())
        store.transactions.begin()
        for k in range(40):   # force evictions across several files
            store.insert_entity("person", {"soc-sec-no": k})
        # Every data-block write was preceded by a log force: the durable
        # log prefix covers every record whose page could be on disk.
        assert store.wal.forces > 0
        store.transactions.commit()

    def test_log_truncated_after_recovery(self, db):
        with db.transaction():
            db.execute('Insert person(name := "A", soc-sec-no := 1)')
        db.simulate_crash()
        assert len(db.store.wal) == 0

    def test_recovery_checkpoints(self, db):
        with db.transaction():
            db.execute('Insert person(name := "A", soc-sec-no := 1)')
        stats = db.simulate_crash()
        assert db.store.wal.checkpoints == 1
        assert stats["checkpoint_lsn"] == db.store.wal.last_checkpoint_lsn


class TestRecoveryIdempotence:
    """Recovery must be re-runnable: a crash *during* the undo pass
    followed by a fresh recovery converges to the same disk image as an
    uninterrupted recovery (undo applies absolute before-images in a
    fixed order from the durable log, and appends nothing to it)."""

    SCRIPT = [
        'Insert person(name := "W{0}", soc-sec-no := {1})'.format(i, i + 1)
        for i in range(6)
    ]

    def _crashed_db(self):
        """A database with committed work plus a flushed multi-record
        in-flight transaction — several loser slots for undo to restore."""
        from repro.errors import InjectedCrash
        db = Database(UNIVERSITY_DDL, constraint_mode="off")
        for statement in self.SCRIPT:
            db.execute(statement)
        db.begin()
        for i in range(4):
            db.execute(f'Insert person(name := "L{i}",'
                       f' soc-sec-no := {100 + i})')
        db.store.pool.flush()   # steal: loser pages reach the platter
        injector = db.install_faults(seed=41)
        injector.crash_after_writes(1)
        db.execute('Insert person(name := "LX", soc-sec-no := 999)')
        with pytest.raises(InjectedCrash):
            db.store.pool.flush()   # the machine dies on this steal
        return db, injector

    def test_crash_during_recovery_converges(self):
        from repro.errors import InjectedCrash
        # reference: one uninterrupted recovery
        db_a, _ = self._crashed_db()
        db_a.simulate_crash()
        reference = db_a.store.disk.fingerprint()
        reference_rows = sorted(
            db_a.query("From person Retrieve name, soc-sec-no").rows)

        # victim: recovery itself crashes mid-undo, then reruns
        db_b, injector = self._crashed_db()
        assert len(db_b.store.wal.loser_updates()) > 1
        injector.crash_after_writes(1)   # fires inside undo_losers
        with pytest.raises(InjectedCrash):
            db_b.simulate_crash()
        db_b.simulate_crash()            # second, uninterrupted pass
        assert db_b.store.disk.fingerprint() == reference
        assert sorted(db_b.query(
            "From person Retrieve name, soc-sec-no").rows) == reference_rows
        assert db_b.check().ok

    def test_repeated_interrupted_recoveries_converge(self):
        from repro.errors import InjectedCrash
        db, injector = self._crashed_db()
        losers = len(db.store.wal.loser_updates())
        assert losers > 2
        # crash recovery at successively later points; each rerun starts
        # from the same durable log and absolute before-images
        for crash_at in range(1, losers):
            injector.crash_after_writes(crash_at)
            with pytest.raises(InjectedCrash):
                db.simulate_crash()
        db.simulate_crash()
        assert db.check().ok
        names = {name for name, _ in
                 db.query("From person Retrieve name, soc-sec-no").rows}
        assert names == {f"W{i}" for i in range(6)}

    def test_rebuild_metadata_rerun_is_noop(self, db):
        with db.transaction():
            db.execute('Insert person(name := "A", soc-sec-no := 1)')
        db.simulate_crash()
        writes_before = db.store.pool.stats.physical_writes
        for record_file in db.store._files.values():
            record_file.rebuild_metadata(db.store.disk)
        db.store.pool.flush()
        assert db.store.pool.stats.physical_writes == writes_before


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 5)),
                min_size=1, max_size=12),
       st.booleans())
def test_crash_recovery_matches_committed_model(operations, flush_mid):
    """Property: after any committed prefix + an arbitrary in-flight
    suffix + crash, the database equals the committed prefix exactly."""
    db = Database(UNIVERSITY_DDL, constraint_mode="off")
    committed = {}
    ssn = [0]

    def apply(db_apply, commit_ops):
        for insert, key in commit_ops:
            if insert:
                ssn[0] += 1
                db_apply.execute(
                    f'Insert person(name := "p{key}",'
                    f' soc-sec-no := {ssn[0]})')
                committed[ssn[0]] = f"p{key}"

    half = len(operations) // 2
    with db.transaction():
        apply(db, operations[:half])
    db.begin()
    for offset, (insert, key) in enumerate(operations[half:]):
        if insert:
            db.execute(f'Insert person(name := "lost{key}",'
                       f' soc-sec-no := {9000 + offset})')
    if flush_mid:
        db.store.pool.flush()
    db.simulate_crash()
    rows = dict((s, n) for n, s in
                db.query("From person Retrieve name, soc-sec-no").rows)
    assert rows == {s: n for s, n in committed.items()}
