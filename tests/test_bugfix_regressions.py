"""Regression tests for the error-masking bugfix sweep.

Each test pins one fixed bug:

* the DDL parser swallowed *every* exception raised while building
  AttributeOptions — genuine bugs surfaced as position-annotated syntax
  errors with the original traceback lost;
* UpdateEngine.execute let a failing rollback *replace* the statement's
  own error — under an injected storage fault the caller saw the cleanup
  failure instead of the fault that caused it;
* SimDate leaked raw OverflowError / AttributeError / TypeError instead
  of typed errors, and ignored 3VL semantics for NULL operands;
* PerfCounters increments raced under concurrent sessions.
"""

import threading

import pytest

from repro import Database, parse_ddl
from repro.errors import (
    DDLSyntaxError,
    InjectedCrash,
    RequiredViolation,
    SchemaError,
    TypeMismatchError,
)
from repro.mapper.physical import PhysicalDesign
from repro.perf import PerfCounters
from repro.types.dates import SimDate
from repro.types.tvl import NULL
from repro.workloads import UNIVERSITY_DDL


class TestDDLOptionErrors:
    """Bug 1: blanket ``except Exception`` around AttributeOptions."""

    def test_domain_error_is_syntax_error_with_cause(self):
        with pytest.raises(DDLSyntaxError) as info:
            parse_ddl("Class thing ( tags: string[10], unique, mv );")
        assert "multi-valued" in str(info.value)
        # The original SchemaError survives as the explicit cause.
        assert isinstance(info.value.__cause__, SchemaError)

    def test_syntax_error_carries_position(self):
        with pytest.raises(DDLSyntaxError) as info:
            parse_ddl("Class thing (\n  xs: integer, mv (max 0) );")
        assert info.value.line == 2

    def test_unexpected_errors_propagate_untranslated(self, monkeypatch):
        import repro.schema.ddl_parser as ddl_parser

        def boom(**_kwargs):
            raise RuntimeError("attribute-options bug")

        monkeypatch.setattr(ddl_parser, "AttributeOptions", boom)
        # A genuine bug must NOT be rewritten into a syntax error.
        with pytest.raises(RuntimeError, match="attribute-options bug"):
            parse_ddl("Class thing ( name: string[10] );")


class TestRollbackMasking:
    """Bug 2: a failing rollback replaced the statement's own error."""

    def _crashing_db(self):
        schema = parse_ddl(UNIVERSITY_DDL)
        # One buffer frame: the statement's second block evicts (and
        # physically writes) the first, so an armed write-crash fires
        # mid-statement and the undo closures must re-read a block from
        # the now-dead device.
        database = Database(schema,
                            design=PhysicalDesign(schema, pool_capacity=1),
                            constraint_mode="off")
        database.execute('Insert course(course-no := 101,'
                         ' title := "Algebra I", credits := 3)')
        database.store.pool.flush()
        return database

    def test_original_fault_survives_failed_rollback(self):
        database = self._crashing_db()
        injector = database.install_faults()
        injector.crash_after_writes(1)
        with pytest.raises(InjectedCrash) as info:
            database.execute(
                'Insert student(name := "S", soc-sec-no := 1,'
                ' student-nbr := 2001, courses-enrolled := course'
                ' with (title = "Algebra I"))')
        # The statement's own failure is what propagates...
        assert "injected crash on write" in str(info.value)
        # ...and the rollback's failure stays reachable as context.
        context = info.value.__context__
        assert isinstance(context, InjectedCrash)
        assert "crashed device" in str(context)

    def test_clean_rollback_still_raises_original(self):
        database = Database(UNIVERSITY_DDL, constraint_mode="immediate")
        with pytest.raises(RequiredViolation):
            database.execute('Insert person(name := "X")')
        # The failed statement left nothing behind.
        assert len(database.query("From person Retrieve name")) == 0


class TestDateErrors:
    """Bug 3: raw OverflowError / TypeError leaks from SimDate."""

    def test_add_days_overflow_is_typed(self):
        with pytest.raises(TypeMismatchError, match="out of range"):
            SimDate(9999, 12, 31).add_days(1)
        with pytest.raises(TypeMismatchError, match="out of range"):
            SimDate(1, 1, 1).add_days(-1)
        # Large enough to overflow timedelta itself, not just the date.
        with pytest.raises(TypeMismatchError):
            SimDate(2000, 1, 1).add_days(10 ** 12)

    def test_add_days_null_is_null(self):
        assert SimDate(2000, 1, 1).add_days(NULL) is NULL
        assert SimDate(2000, 1, 1).add_days(None) is NULL

    def test_add_days_rejects_non_integers(self):
        with pytest.raises(TypeMismatchError, match="integer day count"):
            SimDate(2000, 1, 1).add_days("7")
        with pytest.raises(TypeMismatchError, match="integer day count"):
            SimDate(2000, 1, 1).add_days(True)

    def test_days_until_null_is_null(self):
        assert SimDate(2000, 1, 1).days_until(NULL) is NULL
        assert SimDate(2000, 1, 1).days_until(None) is NULL

    def test_days_until_rejects_non_dates(self):
        with pytest.raises(TypeMismatchError, match="date operand"):
            SimDate(2000, 1, 1).days_until("2001-01-01")

    def test_arithmetic_still_works(self):
        assert SimDate(2000, 1, 1).add_days(30) == SimDate(2000, 1, 31)
        assert SimDate(2000, 1, 1).days_until(SimDate(2000, 1, 31)) == 30


class TestPerfCounterConcurrency:
    """Bug 4: unsynchronized counter increments lost updates."""

    def test_bump_is_thread_safe(self):
        perf = PerfCounters()
        increments, workers = 10_000, 8

        def hammer():
            for _ in range(increments):
                perf.bump("records_decoded")
                perf.bump("record_cache_hits", 2)

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert perf.records_decoded == increments * workers
        assert perf.record_cache_hits == 2 * increments * workers

    def test_concurrent_sessions_count_exactly(self):
        from repro.engine.sessions import Session

        database = Database(UNIVERSITY_DDL, constraint_mode="off")
        for i in range(10):
            database.execute(f'Insert course(course-no := {100 + i},'
                             f' title := "C{i}", credits := 3)')
        database.perf.reset()
        errors = []

        def read_loop():
            session = Session(database)
            try:
                for _ in range(20):
                    session.query("From course Retrieve title")
            except Exception as exc:  # pragma: no cover - diagnostic aid
                errors.append(exc)
            finally:
                session.commit()

        threads = [threading.Thread(target=read_loop) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        counters = database.perf.as_dict()
        # Every query evaluates all 10 course records exactly once; each
        # evaluation is a memo hit or a memo miss, so the sum is exact
        # however the four sessions interleave — unless increments are
        # lost to the old unsynchronized read-modify-write.
        assert (counters["memo_hits"]
                + counters["memo_misses"]) == 4 * 20 * 10
