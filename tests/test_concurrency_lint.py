"""Golden tests for the SIM3xx concurrency lint
(repro.analysis.concurrency) and its CLI wiring.

Each rule gets a positive (fires) and negative (stays silent) snippet;
the sweep test is the acceptance gate — the engine's own source must be
lint-clean after the RankedLock migration.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.concurrency import (
    lint_concurrency_paths,
    lint_concurrency_source,
)
from repro.analysis.diagnostics import RULES
from repro.analysis.lock_order import LOCK_RANKS, describe_hierarchy

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")


def codes(source: str, path: str) -> list:
    return [d.code for d in lint_concurrency_source(source, path)]


class TestSIM300AcquireOutsideWith:
    def test_bare_acquire_fires(self):
        src = "def f(self):\n    self._lock.acquire()\n"
        assert codes(src, "store.py") == ["SIM300"]

    def test_with_block_is_clean(self):
        src = "def f(self):\n    with self._lock:\n        pass\n"
        assert codes(src, "store.py") == []

    def test_semaphore_is_not_a_lock(self):
        src = "def f(self):\n    self._slots.acquire()\n"
        assert codes(src, "server.py") == []

    def test_noqa_suppresses(self):
        src = "def f(self):\n    self._lock.acquire()  # noqa: SIM300\n"
        assert codes(src, "store.py") == []


class TestSIM301RankInversion:
    def test_ascending_nesting_fires(self):
        src = ("def f(self):\n"
               "    with self._lock:\n"              # storage.buffer, 10
               "        with store.commit_latch:\n"  # 36: inversion
               "            pass\n")
        assert codes(src, "buffer.py") == ["SIM301"]

    def test_descending_nesting_is_clean(self):
        src = ("def f(self):\n"
               "    with store.commit_latch:\n"      # 36
               "        with self._mutex:\n"         # mapper.versions, 30
               "            pass\n")
        assert codes(src, "versions.py") == []

    def test_unit_latch_under_class_locks_is_clean(self):
        src = ("def f(self):\n"
               "    with self._cond:\n"              # sessions.class_locks, 50
               "        with record_file.latch:\n"   # store.unit_latch, 42
               "            pass\n")
        assert codes(src, "sessions.py") == []

    def test_unranked_nesting_is_clean(self):
        src = ("def f(self):\n"
               "    with self.whatever_lock:\n"
               "        with self.other_lock:\n"
               "            pass\n")
        assert codes(src, "util.py") == []

    def test_inversion_is_an_error(self):
        src = ("def f(self):\n"
               "    with self._lock:\n"
               "        with store.commit_latch:\n"
               "            pass\n")
        diags = lint_concurrency_source(src, "buffer.py")
        assert diags[0].severity == "error"


class TestSIM302BlockingUnderLock:
    def test_socket_send_under_lock_fires(self):
        src = ("def f(self):\n"
               "    with self._conn_lock:\n"
               "        self.sock.sendall(data)\n")
        assert codes(src, "server.py") == ["SIM302"]

    def test_future_result_under_lock_fires(self):
        src = ("def f(self):\n"
               "    with self._lock:\n"
               "        value = future.result()\n")
        assert codes(src, "parallel.py") == ["SIM302"]

    def test_wal_force_under_lock_fires(self):
        src = ("def f(self):\n"
               "    with self._lock:\n"
               "        self.wal.force()\n")
        assert codes(src, "buffer.py") == ["SIM302"]

    def test_wait_without_timeout_fires(self):
        src = ("def f(self):\n"
               "    while True:\n"
               "        with self._cond:\n"
               "            self._cond.wait()\n")
        assert codes(src, "sessions.py") == ["SIM302"]

    def test_blocking_outside_lock_is_clean(self):
        src = ("def f(self):\n"
               "    with self._lock:\n"
               "        data = prepare()\n"
               "    self.sock.sendall(data)\n")
        assert codes(src, "server.py") == []

    def test_wait_with_timeout_in_loop_is_clean(self):
        src = ("def f(self):\n"
               "    while self.busy:\n"
               "        with self._cond:\n"
               "            self._cond.wait(0.1)\n")
        assert codes(src, "sessions.py") == []


class TestSIM303UnguardedSharedWrite:
    def test_unguarded_write_in_threaded_class_fires(self):
        src = ("class BufferPool:\n"
               "    def grow(self):\n"
               "        self.capacity = 99\n")
        assert codes(src, "buffer.py") == ["SIM303"]

    def test_guarded_write_is_clean(self):
        src = ("class BufferPool:\n"
               "    def grow(self):\n"
               "        with self._lock:\n"
               "            self.capacity = 99\n")
        assert codes(src, "buffer.py") == []

    def test_init_is_exempt(self):
        src = ("class BufferPool:\n"
               "    def __init__(self):\n"
               "        self.capacity = 99\n")
        assert codes(src, "buffer.py") == []

    def test_unthreaded_class_is_exempt(self):
        src = ("class Widget:\n"
               "    def grow(self):\n"
               "        self.capacity = 99\n")
        assert codes(src, "buffer.py") == []

    def test_def_line_noqa_covers_the_body(self):
        src = ("class BufferPool:\n"
               "    def grow(self):  # noqa: SIM303\n"
               "        self.capacity = 99\n"
               "        self.count = 0\n")
        assert codes(src, "buffer.py") == []

    def test_global_write_in_threaded_module_fires(self):
        src = ("def bump():\n"
               "    global counter\n"
               "    counter = counter + 1\n")
        assert codes(src, "server.py") == ["SIM303"]


class TestSIM304WaitOutsidePredicateLoop:
    def test_wait_outside_while_fires(self):
        src = ("def f(self):\n"
               "    with self._cond:\n"
               "        self._cond.wait(0.1)\n")
        assert codes(src, "sessions.py") == ["SIM304"]

    def test_wait_inside_while_is_clean(self):
        src = ("def f(self):\n"
               "    with self._cond:\n"
               "        while self.pending:\n"
               "            self._cond.wait(0.1)\n")
        assert codes(src, "sessions.py") == []

    def test_wait_for_is_exempt(self):
        src = ("def f(self):\n"
               "    with self._cond:\n"
               "        self._cond.wait_for(lambda: True, timeout=0.1)\n")
        assert codes(src, "sessions.py") == []


class TestFramework:
    def test_sim3xx_codes_are_catalogued(self):
        for code in ("SIM300", "SIM301", "SIM302", "SIM303", "SIM304"):
            assert code in RULES
        assert RULES["SIM301"].severity == "error"

    def test_diagnostics_carry_concurrency_source(self):
        src = "def f(self):\n    self._lock.acquire()\n"
        diag = lint_concurrency_source(src, "store.py")[0]
        assert diag.source == "concurrency"
        assert diag.span.line == 2

    def test_hierarchy_is_strictly_ordered(self):
        ranks = sorted(LOCK_RANKS.values())
        assert len(set(ranks)) == len(ranks)
        assert LOCK_RANKS["storage.wal"] == min(ranks)
        assert LOCK_RANKS["storage.wal"] < LOCK_RANKS["storage.buffer"]
        assert LOCK_RANKS["store.commit_latch"] \
            < LOCK_RANKS["store.unit_latch"] \
            < LOCK_RANKS["sessions.class_locks"]
        text = describe_hierarchy()
        assert "storage.wal" in text.splitlines()[0]

    def test_syntax_error_is_reported_not_raised(self):
        diags = lint_concurrency_source("def broken(:\n", "bad.py")
        assert len(diags) == 1
        assert diags[0].severity == "error"


class TestSweep:
    def test_src_repro_is_lint_clean(self):
        """The acceptance gate: zero findings over the engine source."""
        reported = lint_concurrency_paths([SRC_REPRO])
        assert reported == [], "\n".join(
            d.describe(p) for p, d in reported)

    def test_sweep_visits_the_migrated_modules(self):
        from repro.analysis.concurrency import _python_files
        names = {os.path.basename(p) for p in _python_files([SRC_REPRO])}
        assert {"sessions.py", "store.py", "versions.py", "buffer.py",
                "read_cache.py", "server.py"} <= names


class TestCLI:
    def test_concurrency_flag_routes_and_exits_zero(self, capsys):
        from repro.analysis.cli import main
        status = main(["--concurrency", SRC_REPRO])
        out = capsys.readouterr().out
        assert status == 0
        assert "0 error(s), 0 warning(s)" in out

    def test_strict_mode_fails_on_warnings(self, tmp_path, capsys):
        bad = tmp_path / "buffer.py"
        bad.write_text("class BufferPool:\n"
                       "    def grow(self):\n"
                       "        self.capacity = 99\n")
        from repro.analysis.cli import main
        assert main(["--concurrency", str(bad)]) == 0
        capsys.readouterr()
        assert main(["--concurrency", "--strict", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "SIM303" in out

    def test_error_findings_fail_without_strict(self, tmp_path, capsys):
        bad = tmp_path / "buffer.py"
        bad.write_text("def f(self):\n"
                       "    with self._lock:\n"
                       "        with store.commit_latch:\n"
                       "            pass\n")
        from repro.analysis.cli import main
        assert main(["--concurrency", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "SIM301" in out

    def test_dev_lint_includes_concurrency_pass(self, tmp_path, capsys):
        import importlib.util
        spec = importlib.util.spec_from_file_location(
            "dev_lint", os.path.join(REPO_ROOT, "tools", "dev_lint.py"))
        dev_lint = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(dev_lint)
        bad = tmp_path / "buffer.py"
        bad.write_text("class BufferPool:\n"
                       "    def grow(self):\n"
                       "        self.capacity = 99\n")
        assert dev_lint.main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "SIM303" in out
        assert dev_lint.main(["--no-concurrency", str(bad)]) == 0
