"""Cross-cutting property-based tests on system invariants."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database
from repro.mapper import MapperStore
from repro.schema import parse_ddl
from repro.workloads import UNIVERSITY_DDL


SCHEMA = parse_ddl(UNIVERSITY_DDL)


def eva(name, cls="student"):
    return SCHEMA.get_class(cls).attribute(name)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 4),
                          st.integers(0, 4)), min_size=1, max_size=40))
def test_eva_inverse_always_symmetric(operations):
    """Invariant (§3.2): 'an EVA and its inverse will stay synchronized at
    all times' — under arbitrary include/exclude sequences."""
    store = MapperStore(SCHEMA)
    enrolled = eva("courses-enrolled")
    students = [store.insert_entity("student", {"soc-sec-no": k})
                for k in range(5)]
    courses = [store.insert_entity(
        "course", {"course-no": k + 1, "title": f"C{k}", "credits": 1})
        for k in range(5)]
    model = set()
    for op, si, ci in operations:
        student, course = students[si], courses[ci]
        if op == 0:
            if (si, ci) not in model:
                store.eva_include(student, enrolled, course)
                model.add((si, ci))
        else:
            store.eva_exclude(student, enrolled, course)
            model.discard((si, ci))
    for si, student in enumerate(students):
        expected = {courses[ci] for s, ci in model if s == si}
        assert set(store.eva_targets(student, enrolled)) == expected
    for ci, course in enumerate(courses):
        expected = {students[si] for si, c in model if c == ci}
        assert set(store.eva_targets(course, enrolled.inverse)) == expected


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.integers(0, 3), min_size=1, max_size=12),
       st.integers(0, 3))
def test_abort_always_restores_initial_state(role_adds, cut):
    """Invariant: aborting a transaction restores the visible state,
    whatever mix of role additions and EVA writes happened."""
    store = MapperStore(SCHEMA)
    advisor = eva("advisor")
    instructor = store.insert_entity("instructor", {"soc-sec-no": 1,
                                                    "employee-nbr": 1001})
    baseline_counts = {c.name: store.class_count(c.name)
                       for c in SCHEMA.classes()}
    store.transactions.begin()
    created = []
    for index, kind in enumerate(role_adds):
        surr = store.insert_entity("student", {"soc-sec-no": 100 + index})
        created.append(surr)
        if kind % 2 == 0:
            store.eva_include(surr, advisor, instructor)
        if kind == 3 and store.has_role(surr, "student"):
            store.remove_role(surr, "student")
    store.transactions.abort()
    for name, count in baseline_counts.items():
        assert store.class_count(name) == count
    assert store.eva_targets(instructor, advisor.inverse) == []


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=0,
                max_size=8))
def test_query_results_independent_of_physical_mapping(titles):
    """The same DML must return the same answer under every EVA mapping —
    physical data independence."""
    from repro.mapper import EvaMapping, PhysicalDesign
    results = []
    for mapping in (EvaMapping.COMMON, EvaMapping.DEDICATED,
                    EvaMapping.CLUSTERED, EvaMapping.POINTER):
        schema = parse_ddl(UNIVERSITY_DDL)
        design = PhysicalDesign(schema)
        design.override_eva("student", "courses-enrolled", mapping)
        db = Database(schema, design=design.finalize(),
                      constraint_mode="off")
        for index, title in enumerate(titles):
            db.execute(f'Insert course(course-no := {index + 1},'
                       f' title := "{title}", credits := 1)')
        db.execute('Insert student(soc-sec-no := 1)')
        for title in set(titles):
            db.execute(f'Modify student(courses-enrolled := include course'
                       f' with (title = "{title}")) Where soc-sec-no = 1')
        rows = db.query("From student Retrieve title of courses-enrolled"
                        " Order By title of courses-enrolled").rows
        results.append(rows)
    assert all(r == results[0] for r in results)


@settings(max_examples=30, deadline=None)
@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
               max_size=60))
def test_dml_parser_never_crashes_unexpectedly(text):
    """The parser either succeeds or raises a SIM error — never an
    arbitrary Python exception."""
    from repro import parse_dml
    from repro.errors import SimError
    try:
        parse_dml(text)
    except SimError:
        pass


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 6), st.integers(1, 10))
def test_hierarchy_roles_consistent(depth, entities):
    """Every entity inserted at the leaf holds exactly the chain's roles."""
    from repro.workloads import hierarchy_chain_schema
    from repro.mapper import MapperStore
    schema = hierarchy_chain_schema(depth)
    store = MapperStore(schema)
    for index in range(entities):
        surr = store.insert_entity(f"level{depth - 1}", {"key0": index})
        assert store.roles_of(surr, "level0") == [
            f"level{k}" for k in range(depth)]


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(2, 8), st.integers(2, 6), st.integers(0, 10**6))
def test_every_plan_is_equivalent_to_canonical(students, instructors, seed):
    """Property: for random populations and a multi-perspective query with
    selective conjuncts, EVERY enumerated strategy (index choices and loop
    reorderings) returns exactly the canonical nested-loop result."""
    import random
    from repro import Database, parse_dml

    rng = random.Random(seed)
    db = Database(UNIVERSITY_DDL, constraint_mode="off",
                  use_optimizer=False)
    store = db.store
    for k in range(instructors):
        store.insert_entity("instructor", {
            "soc-sec-no": k + 1, "employee-nbr": 1001 + k,
            "salary": rng.randint(1, 9) * 10000})
    for k in range(students):
        store.insert_entity("student", {
            "soc-sec-no": 100 + k, "student-nbr": 2001 + k})
    target_ssn = rng.randint(1, instructors)
    text = ("From student, instructor Retrieve soc-sec-no of student,"
            " employee-nbr of instructor"
            f" Where soc-sec-no of instructor = {target_ssn}"
            " and soc-sec-no of student >= 100")
    query = parse_dml(text)
    tree = db.qualifier.resolve_retrieve(query)
    reference = db.executor.run(query, tree, None).rows
    for plan in db.optimizer.enumerate_strategies(query, tree):
        fresh = parse_dml(text)
        fresh_tree = db.qualifier.resolve_retrieve(fresh)
        assert db.executor.run(fresh, fresh_tree, plan).rows == reference
