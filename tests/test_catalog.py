"""Directory/catalog tests: the schema as a queryable SIM database (§6)."""

import pytest

from repro.directory import build_catalog


@pytest.fixture(scope="module")
def catalog(university_schema):
    return build_catalog(university_schema)


class TestCatalogQueries:
    def test_base_classes(self, catalog):
        rows = catalog.query(
            "From db-class Retrieve name Where is-base = true").rows
        assert {r[0] for r in rows} == {"person", "course", "department"}

    def test_subclass_edges(self, catalog):
        rows = catalog.query("""
            From db-class Retrieve name, name of superclasses
            Where name = "teaching-assistant" """).rows
        assert {r[1] for r in rows} == {"student", "instructor"}

    def test_attribute_metadata(self, catalog):
        rows = catalog.query("""
            From db-attribute Retrieve name, max-cardinality
            Where name = "advisees" """).rows
        assert rows == [("advisees", 10)]

    def test_eva_ranges(self, catalog):
        value = catalog.query("""
            From db-attribute Retrieve name of range
            Where name = "advisor" """).scalar()
        assert value == "instructor"

    def test_inverse_pairing_recorded(self, catalog):
        value = catalog.query("""
            From db-attribute Retrieve name of inverse-attr
            Where name = "advisor" and kind = "eva" """).scalar()
        assert value == "advisees"

    def test_constraints_listed(self, catalog):
        rows = catalog.query(
            "From db-constraint Retrieve name, name of on-class").rows
        assert sorted(rows) == [("v1", "student"), ("v2", "instructor")]

    def test_levels(self, catalog):
        value = catalog.query("""
            From db-class Retrieve level
            Where name = "teaching-assistant" """).scalar()
        assert value == 2

    def test_attribute_counts_by_class(self, catalog):
        rows = catalog.query("""
            From db-class Retrieve name, count(attributes) of db-class
            Order By name""").rows
        counts = dict(rows)
        # person: name, soc-sec-no, birthdate, spouse, profession, surrogate
        assert counts["person"] == 6

    def test_aggregate_over_catalog(self, catalog):
        total = catalog.query("""
            From db-attribute Retrieve Table Distinct
            count(db-attribute)""").scalar()
        assert total > 30
