"""End-to-end scenario: a full academic-term lifecycle on one database.

Exercises the whole stack in one narrative — DDL, transactional loading,
VERIFY enforcement, role extension, views, derived attributes, history,
optimizer, structured output, crash recovery — the way a downstream
adopter would actually drive the system.
"""

import pytest
from decimal import Decimal

from repro import ConstraintViolation, Database
from repro.interfaces import HostSession, QueryBuilder
from repro.interfaces.builder import attr, path
from repro.types.tvl import is_null
from repro.workloads import UNIVERSITY_DDL

TERM_DDL = UNIVERSITY_DDL + """
Derive compensation on instructor as salary + bonus;
View overloaded of instructor where count(courses-taught) >= 2;
"""


@pytest.fixture(scope="module")
def db():
    database = Database(TERM_DDL, constraint_mode="immediate",
                        track_history=True)
    with database.transaction():
        database.execute('Insert department(dept-nbr := 100,'
                         ' name := "Physics")')
        database.execute('Insert department(dept-nbr := 200,'
                         ' name := "Math")')
        for number, title, credits in [
                (101, "Mechanics", 6), (102, "Optics", 6),
                (103, "Algebra", 6), (104, "Analysis", 6),
                (105, "Seminar", 2)]:
            database.execute(
                f'Insert course(course-no := {number},'
                f' title := "{title}", credits := {credits})')
        database.execute(
            'Insert instructor(name := "Newton", soc-sec-no := 1,'
            ' employee-nbr := 1001, salary := 70000, bonus := 5000,'
            ' assigned-department := department with (name = "Physics"),'
            ' courses-taught := course with (course-no <= 102))')
        database.execute(
            'Insert instructor(name := "Gauss", soc-sec-no := 2,'
            ' employee-nbr := 1002, salary := 80000, bonus := 0,'
            ' assigned-department := department with (name = "Math"),'
            ' courses-taught := course with (title = "Algebra"))')
        for index, name in enumerate(["Alice", "Bruno", "Chen"]):
            database.execute(
                f'Insert student(name := "{name}",'
                f' soc-sec-no := {10 + index},'
                f' advisor := instructor with (name = "Newton"),'
                f' major-department := department with (name = "Physics"),'
                f' courses-enrolled := course with (credits = 6))')
    return database


class TestTermLifecycle:
    def test_loading_respected_constraints(self, db):
        sums = db.query("From student Retrieve sum(credits of"
                        " courses-enrolled) of student").column(0)
        assert all(total >= 12 for total in sums)

    def test_underload_rejected_midterm(self, db):
        with pytest.raises(ConstraintViolation):
            db.execute('Modify student(courses-enrolled := exclude'
                       ' courses-enrolled) Where name = "Alice"')
        # nothing changed
        assert db.query('From student Retrieve count(courses-enrolled) of'
                        ' student Where name = "Alice"').scalar() == 4

    def test_view_and_derived_together(self, db):
        rows = db.query("From overloaded Retrieve name, compensation"
                        " Order By name").rows
        assert rows == [("Newton", Decimal("75000.00"))]

    def test_promote_student_to_ta(self, db):
        db.execute('Insert teaching-assistant From student'
                   ' Where name = "Chen"'
                   ' (employee-nbr := 60001, teaching-load := 5,'
                   '  salary := 12000, bonus := 0)')
        rows = db.query('From person Retrieve profession'
                        ' Where name = "Chen"').rows
        assert {r[0] for r in rows} == {"student", "instructor"}
        assert db.query("From teaching-assistant Retrieve teaching-load"
                        ).scalar() == 5

    def test_builder_and_host_interface(self, db):
        built = (QueryBuilder("instructor")
                 .retrieve("name", path("name", "assigned-department"))
                 .order_by("name"))
        rows = built.run(db).rows
        assert ("Gauss", "Math") in rows
        cursor = HostSession(db).open_cursor(
            "From instructor Retrieve name,"
            " title of courses-taught Where name = \"Newton\"")
        formats = [record.format_name for record in cursor]
        assert formats[0] == "instructor"
        assert formats.count("courses-taught") == 2

    def test_history_spans_the_term(self, db):
        newton = db.query('From instructor Retrieve instructor'
                          ' Where name = "Newton"').scalar()
        before = db.clock
        db.execute('Modify instructor(salary := salary + 1000)'
                   ' Where name = "Newton"')
        assert db.value_as_of(newton, "instructor", "salary", before) == \
            Decimal("70000.00")

    def test_optimizer_used_for_selective_lookup(self, db):
        report = db.explain("From student Retrieve name"
                            " Where soc-sec-no = 11")
        assert "index" in report

    def test_crash_mid_registration(self, db):
        with db.transaction():
            db.execute('Insert student(name := "Durable",'
                       ' soc-sec-no := 99, courses-enrolled := course'
                       ' with (credits = 6))')
        db.begin()
        db.execute('Insert student(name := "Ghost", soc-sec-no := 98,'
                   ' courses-enrolled := course with (credits = 6))')
        db.store.pool.flush()
        db.simulate_crash()
        names = set(db.query("From student Retrieve name").column(0))
        assert "Durable" in names and "Ghost" not in names

    def test_catalog_reflects_schema(self, db):
        from repro.directory import build_catalog
        catalog = build_catalog(db.schema)
        assert catalog.query('From db-constraint Retrieve name'
                             ' Order By name').column(0) == ["v1", "v2"]
