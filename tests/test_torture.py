"""Randomized crash-torture: crash at every k-th physical write.

The harness replays small UNIVERSITY update workloads (inserts, DVA/EVA
modifies, deletes, include/exclude churn) against a fault-injected
database, crashing after every possible k-th physical write, recovering,
and asserting three things for every crash point:

* the semantic consistency checker comes back clean — EVA/inverse
  symmetry, hierarchy containment, index agreement, free-space accuracy
  and declared constraints all hold on the recovered physical state;
* no committed effect is lost and no uncommitted effect survives: the
  recovered database's logical dump equals a fault-free shadow database
  that executed exactly the committed statement prefix.  Statement-level
  autocommit makes the oracle binary — ``execute`` returned iff the
  statement is durable (data pages flush *before* the commit record, so
  a write-triggered crash can never land past the commit point);
* a second crash injected *during recovery* doesn't change the outcome
  (see test_recovery.py for the fingerprint-level idempotence test).

Dumps are keyed by business keys (student-nbr, employee-nbr, course-no,
dept-nbr), never by surrogates, so they are insensitive to surrogate
assignment order.  The crash-matrix tests carry ``@pytest.mark.torture``
(run them alone with ``make torture``).
"""

import pytest

from repro.errors import InjectedCrash, StorageError, TransientStorageError
from repro.workloads.university import build_university

#: deliberately small population: the crash matrix rebuilds the database
#: once per crash point, and every write ordinal in every script is hit
BUILD = dict(departments=2, instructors=3, students=8, courses=6,
             ta_fraction=0.0, seed=11)

TORTURE_SEED = 1988  # fixed seed for the whole lane (SIGMOD '88)


def fresh_db():
    database = build_university(**BUILD)
    # populate_university loads through the raw Mapper (no transactions),
    # so make the base population durable before any fault is armed
    database.store.pool.flush()
    return database


# --------------------------------------------------------------------- scripts
#
# Generated deterministically so each script is long enough to give the
# matrix its >= 200 crash points while staying readable as code.

def _insert_script():
    script = []
    for i in range(10):
        script.append(f'Insert student(name := "Tor S{i}",'
                      f' soc-sec-no := 90000{i:04d},'
                      f' student-nbr := {3001 + i})')
        script.append(f'Insert course(course-no := {901 + i},'
                      f' title := "Crashing {i}", credits := {2 + i % 4})')
    for i in range(5):
        script.append(f'Insert instructor(name := "Tor I{i}",'
                      f' soc-sec-no := 90001{i:04d},'
                      f' employee-nbr := {1901 + i},'
                      f' salary := {39000 + 500 * i})')
        script.append(f'Insert person(name := "Tor P{i}",'
                      f' soc-sec-no := 90002{i:04d})')
    script.append('Insert department(dept-nbr := 901,'
                  ' name := "Resilience")')
    return script


def _modify_script():
    script = []
    for round_no in range(6):
        for course_no in (101, 103, 105):
            script.append(f'Modify course(credits := {1 + round_no})'
                          f' Where course-no = {course_no}')
        for student_nbr in (2001, 2003, 2005):
            script.append(f'Modify student(name := "Round {round_no}")'
                          f' Where student-nbr = {student_nbr}')
        script.append(f'Modify instructor(salary := {50000 + round_no})'
                      f' Where employee-nbr = {1001 + round_no % 3}')
        advisor = 1001 + round_no % 3
        script.append(f'Modify student(advisor := instructor with'
                      f' (employee-nbr = {advisor}))'
                      f' Where student-nbr = {2002 + round_no}')
        dept = 100 + round_no % 2
        script.append(f'Modify student(major-department := department'
                      f' with (dept-nbr = {dept}))'
                      f' Where student-nbr = {2001 + round_no}')
    return script


def _delete_script():
    script = [
        'Delete course Where course-no = 106',
        'Delete student Where student-nbr = 2008',
        'Delete student Where student-nbr = 2007',
        'Delete course Where course-no = 105',
        'Delete student Where student-nbr = 2006',
    ]
    # delete/re-insert churn: every round buries the previous round's
    # rows and frees slots the next round reoccupies
    for i in range(12):
        script.append(f'Insert student(name := "Churn {i}",'
                      f' soc-sec-no := 90003{i:04d},'
                      f' student-nbr := {3101 + i})')
        script.append(f'Insert course(course-no := {911 + i},'
                      f' title := "Backfill {i}", credits := 3)')
        if i >= 2:
            script.append(f'Delete student'
                          f' Where student-nbr = {3101 + i - 2}')
            script.append(f'Delete course Where course-no = {911 + i - 2}')
    return script


def _include_exclude_script():
    script = [
        'Insert course(course-no := 921, title := "Churn",'
        ' credits := 3)',
        'Insert instructor(name := "Churn Teacher",'
        ' soc-sec-no := 900000041, employee-nbr := 1921,'
        ' salary := 40000)',
    ]
    for round_no in range(6):
        for student_nbr in (2001, 2002, 2003, 2004):
            script.append(f'Modify student(courses-enrolled := include'
                          f' course with (course-no = 921))'
                          f' Where student-nbr = {student_nbr}')
        script.append('Modify course(teachers := include instructor with'
                      ' (employee-nbr = 1921)) Where course-no = 921')
        for student_nbr in (2002, 2004, 2001, 2003):
            script.append(f'Modify student(courses-enrolled := exclude'
                          f' courses-enrolled with (course-no = 921))'
                          f' Where student-nbr = {student_nbr}')
        script.append('Modify course(teachers := exclude teachers with'
                      ' (employee-nbr = 1921)) Where course-no = 921')
    return script


SCRIPTS = {
    "insert": _insert_script(),
    "modify": _modify_script(),
    "delete": _delete_script(),
    "include-exclude": _include_exclude_script(),
}


# ----------------------------------------------------------------------- dumps

#: logical dump queries, every one keyed by business keys only
DUMP_QUERIES = (
    "From person Retrieve soc-sec-no, name",
    "From student Retrieve student-nbr, soc-sec-no, name",
    "From instructor Retrieve employee-nbr, salary, bonus",
    "From course Retrieve course-no, title, credits",
    "From department Retrieve dept-nbr, name",
    "From student Retrieve student-nbr, employee-nbr of advisor",
    "From student Retrieve student-nbr, course-no of courses-enrolled",
    "From student Retrieve student-nbr, dept-nbr of major-department",
    "From course Retrieve course-no, employee-nbr of teachers",
    "From instructor Retrieve employee-nbr, dept-nbr of"
    " assigned-department",
)


def dump(database):
    """Surrogate-independent logical snapshot of the whole database."""
    return [sorted(database.query(text).rows, key=repr)
            for text in DUMP_QUERIES]


def shadow_dumps(script):
    """Dump after each committed prefix of ``script`` (fault-free twin):
    ``dumps[n]`` is the state after the first ``n`` statements."""
    shadow = fresh_db()
    dumps = [dump(shadow)]
    for statement in script:
        shadow.execute(statement)
        dumps.append(dump(shadow))
    return dumps


def count_writes(script):
    """Dry-run a script and return total physical writes it performs."""
    database = fresh_db()
    injector = database.install_faults(seed=TORTURE_SEED)
    for statement in script:
        database.execute(statement)
    return injector.ops["write"]


def run_with_crash(script, k, seed=TORTURE_SEED):
    """Execute ``script`` with a crash armed after the k-th physical
    write, recover, and return (database, committed-statement count,
    whether the crash actually fired)."""
    database = fresh_db()
    injector = database.install_faults(seed=seed)
    injector.crash_after_writes(k)
    committed = 0
    crashed = False
    try:
        for statement in script:
            database.execute(statement)
            committed += 1
    except InjectedCrash:
        crashed = True
    database.simulate_crash()
    return database, committed, crashed


# ---------------------------------------------------------------- crash matrix

@pytest.mark.torture
@pytest.mark.parametrize("name", sorted(SCRIPTS))
def test_crash_at_every_write(name):
    """Crash after every possible k-th write of the script; every crash
    point must recover to the committed prefix with a clean check()."""
    script = SCRIPTS[name]
    expected = shadow_dumps(script)
    total_writes = count_writes(script)
    assert total_writes >= len(script), "script writes too little to torture"
    fired = 0
    for k in range(1, total_writes + 1):
        database, committed, crashed = run_with_crash(script, k)
        fired += crashed
        report = database.check()
        assert report.ok, (
            f"{name} k={k}: corrupt after recovery: {report.problems[:5]}")
        assert dump(database) == expected[committed], (
            f"{name} k={k}: recovered state is not the committed prefix "
            f"({committed} statements)")
    assert fired == total_writes, "every armed crash point must fire"


@pytest.mark.torture
def test_crash_matrix_covers_200_points():
    """Acceptance floor: the matrix spans >= 200 seeded crash points."""
    total = sum(count_writes(script) for script in SCRIPTS.values())
    assert total >= 200, f"only {total} crash points across the matrix"


@pytest.mark.torture
@pytest.mark.parametrize("name", sorted(SCRIPTS))
def test_crash_on_commit_force(name):
    """Crash on the log force inside commit: the commit record never
    becomes durable, so the statement must be undone even though its data
    pages were already flushed."""
    script = SCRIPTS[name]
    expected = shadow_dumps(script)
    database = fresh_db()
    injector = database.install_faults(seed=TORTURE_SEED)
    injector.fail_force(2, error="crash")
    committed = 0
    with pytest.raises(InjectedCrash):
        for statement in script:
            database.execute(statement)
            committed += 1
    database.simulate_crash()
    assert database.check().ok
    assert dump(database) == expected[committed]


@pytest.mark.torture
def test_double_crash_during_recovery():
    """Crash again in the middle of the undo pass; a rerun of recovery
    must still converge to the committed prefix."""
    script = SCRIPTS["modify"]
    expected = shadow_dumps(script)
    database = fresh_db()
    injector = database.install_faults(seed=TORTURE_SEED)
    injector.crash_after_writes(5)
    committed = 0
    try:
        for statement in script:
            database.execute(statement)
            committed += 1
    except InjectedCrash:
        pass
    injector.crash_after_writes(1)   # fires inside undo_losers
    with pytest.raises(InjectedCrash):
        database.simulate_crash()
    database.simulate_crash()        # second attempt completes
    assert database.check().ok
    assert dump(database) == expected[committed]


# ------------------------------------------------------- non-crash fault modes

class TestTransientFaults:
    def test_transient_write_fault_is_retried(self):
        database = fresh_db()
        injector = database.install_faults(seed=TORTURE_SEED)
        injector.fail_write(1, error="transient")
        database.execute('Insert person(name := "Flaky",'
                         ' soc-sec-no := 900000021)')
        assert database.perf.transient_retries >= 1
        assert database.perf.transient_giveups == 0
        rows = database.query('From person Retrieve name'
                              ' Where soc-sec-no = 900000021').rows
        assert rows == [("Flaky",)]

    def test_transient_read_fault_is_retried(self):
        database = fresh_db()
        injector = database.install_faults(seed=TORTURE_SEED)
        database.cold_cache()
        injector.fail_read(1, error="transient")
        assert len(database.query("From student Retrieve name")) \
            == BUILD["students"]
        assert database.perf.transient_retries >= 1

    def test_retry_counters_surface_in_statistics(self):
        database = fresh_db()
        injector = database.install_faults(seed=TORTURE_SEED)
        database.cold_cache()
        injector.fail_read(1, error="transient")
        database.query("From course Retrieve title")
        stats = database.statistics()
        assert stats["read_path"]["transient_retries"] >= 1
        assert stats["storage"]["retry"]["retries"] >= 1
        assert stats["storage"]["faults"]["injected"]["transient"] >= 1

    def test_persistent_transient_fault_gives_up(self):
        database = fresh_db()
        injector = database.install_faults(seed=TORTURE_SEED)
        database.cold_cache()
        # outlast the retry budget: every attempt fails
        injector.fail_read(1, error="transient",
                           repeat=database.store.retry.max_attempts + 1)
        with pytest.raises(TransientStorageError):
            database.query("From student Retrieve name")
        assert database.perf.transient_giveups == 1

    def test_permanent_fault_is_not_retried(self):
        database = fresh_db()
        injector = database.install_faults(seed=TORTURE_SEED)
        database.cold_cache()
        injector.fail_read(1, error="permanent")
        with pytest.raises(StorageError):
            database.query("From student Retrieve name")
        assert database.perf.transient_retries == 0


class TestTornWrites:
    def test_torn_uncommitted_write_repaired_by_recovery(self):
        # Empty database: the torn block holds only the in-flight
        # transaction's own slots, so the undo pass's before-images cover
        # the whole tear.  (A tear across *other* transactions' slots is
        # unrepairable data loss by design — the committed-write test
        # below shows the checker catching exactly that.)
        from repro.database import Database
        from repro.workloads import UNIVERSITY_DDL
        database = Database(UNIVERSITY_DDL, constraint_mode="off")
        injector = database.install_faults(seed=TORTURE_SEED)
        before = dump(database)
        database.begin()
        database.execute('Insert person(name := "Torn",'
                         ' soc-sec-no := 900000031)')
        injector.torn_write(1, keep=0.5)
        database.store.pool.flush()   # steal: torn page reaches the platter
        database.simulate_crash()
        assert database.check().ok
        assert dump(database) == before

    def test_torn_committed_write_detected_by_checker(self):
        database = fresh_db()
        injector = database.install_faults(seed=TORTURE_SEED)
        injector.torn_write(1, keep=0.2)
        database.execute('Insert person(name := "Shear",'
                         ' soc-sec-no := 900000032)')
        # resident frames mask the torn platter image until dropped
        assert database.check().ok
        database.cold_cache()
        report = database.check()
        assert not report.ok
        assert any("free-space" in p or "index" in p
                   for p in report.problems)
