"""Update statement semantics (paper §4.8)."""

import pytest
from decimal import Decimal

from repro.errors import (
    CardinalityViolation,
    IntegrityError,
    RequiredViolation,
    UniquenessViolation,
)
from repro.types.tvl import is_null


class TestInsert:
    def test_insert_creates_all_superclass_roles(self, empty_university):
        db = empty_university
        db.execute('Insert teaching-assistant(name := "T", soc-sec-no := 1,'
                   ' employee-nbr := 1001, teaching-load := 5)')
        rows = db.query('From person Retrieve name, profession').rows
        assert ("T", "student") in rows and ("T", "instructor") in rows

    def test_assignments_distributed_to_declaring_classes(self,
                                                          empty_university):
        db = empty_university
        db.execute('Insert student(name := "S", soc-sec-no := 1,'
                   ' student-nbr := 2001)')
        row = db.query('From student Retrieve name, student-nbr').rows[0]
        assert row == ("S", 2001)

    def test_type_validation(self, empty_university):
        with pytest.raises(Exception):
            empty_university.execute(
                'Insert student(soc-sec-no := 1, student-nbr := 50000)')

    def test_required_enforced(self, empty_university):
        with pytest.raises(RequiredViolation):
            empty_university.execute('Insert person(name := "X")')

    def test_unique_enforced(self, empty_university):
        empty_university.execute('Insert person(soc-sec-no := 1)')
        with pytest.raises(UniquenessViolation):
            empty_university.execute('Insert person(soc-sec-no := 1)')

    def test_statement_is_atomic_on_failure(self, empty_university):
        db = empty_university
        # unique employee-nbr collision happens after the person role is
        # created; the whole statement must roll back.
        db.execute('Insert instructor(soc-sec-no := 1, employee-nbr := 1001)')
        with pytest.raises(UniquenessViolation):
            db.execute('Insert instructor(soc-sec-no := 2,'
                       ' employee-nbr := 1001)')
        assert len(db.query("From person Retrieve soc-sec-no")) == 1

    def test_insert_from_extends_roles(self, small_university):
        db = small_university
        db.execute('Insert instructor From person Where name = "John Doe"'
                   ' (employee-nbr := 1731)')
        rows = db.query('From person Retrieve profession'
                        ' Where name = "John Doe"').rows
        assert set(r[0] for r in rows) == {"student", "instructor"}

    def test_insert_from_adds_intermediate_roles(self, small_university):
        db = small_university
        # John is a student; making him a TA must add INSTRUCTOR "as
        # needed" (paper §4.8).
        db.execute('Insert teaching-assistant From student'
                   ' Where name = "John Doe"'
                   ' (employee-nbr := 1731, teaching-load := 4)')
        rows = db.query('From teaching-assistant Retrieve name,'
                        ' teaching-load').rows
        assert rows == [("John Doe", 4)]
        assert len(db.query('From instructor Retrieve name'
                            ' Where name = "John Doe"')) == 1

    def test_insert_from_existing_role_rejected(self, small_university):
        with pytest.raises(IntegrityError):
            small_university.execute(
                'Insert student From person Where name = "John Doe"')

    def test_insert_from_non_ancestor_rejected(self, small_university):
        with pytest.raises(IntegrityError):
            small_university.execute(
                'Insert student From course Where title = "Algebra I"')

    def test_assignment_outside_inserted_classes_rejected(self,
                                                          small_university):
        # On role extension, only immediate attributes of the inserted
        # classes may be assigned.
        with pytest.raises(IntegrityError):
            small_university.execute(
                'Insert instructor From person Where name = "John Doe"'
                ' (employee-nbr := 1750, name := "New Name")')

    def test_insert_with_eva_selector(self, small_university):
        db = small_university
        db.execute('Insert student(name := "New", soc-sec-no := 777,'
                   ' advisor := instructor with (name = "Jane Roe"))')
        row = db.query('From student Retrieve name of advisor'
                       ' Where name = "New"').rows[0]
        assert row == ("Jane Roe",)

    def test_sv_eva_selector_must_match_exactly_one(self, small_university):
        with pytest.raises(IntegrityError):
            small_university.execute(
                'Insert student(soc-sec-no := 778,'
                ' advisor := instructor with (salary > 0))')

    def test_system_attribute_not_assignable(self, empty_university):
        with pytest.raises(IntegrityError):
            empty_university.execute(
                'Insert person(soc-sec-no := 1, profession := "student")')


class TestModify:
    def test_simple_assignment(self, small_university):
        db = small_university
        db.execute('Modify course(credits := 6) Where title = "Algebra I"')
        assert db.query('From course Retrieve credits'
                        ' Where title = "Algebra I"').scalar() == 6

    def test_expression_reads_own_entity(self, small_university):
        db = small_university
        db.execute('Modify instructor(salary := 1.1 * salary)'
                   ' Where name = "Joe Bloke"')
        value = db.query('From instructor Retrieve salary'
                         ' Where name = "Joe Bloke"').scalar()
        assert value == Decimal("55000.00")

    def test_inherited_attribute_modifiable(self, small_university):
        db = small_university
        db.execute('Modify student(name := "J. Doe")'
                   ' Where soc-sec-no = 456887766')
        assert len(db.query('From person Retrieve name'
                            ' Where name = "J. Doe"')) == 1

    def test_where_selects_multiple(self, small_university):
        count = small_university.execute(
            'Modify course(credits := 1) Where credits >= 3')
        assert count == 3

    def test_eva_replacement(self, small_university):
        db = small_university
        db.execute('Modify student(advisor := instructor with'
                   ' (name = "Jane Roe")) Where name = "John Doe"')
        assert db.query('From student Retrieve name of advisor'
                        ' Where name = "John Doe"').scalar() == "Jane Roe"
        # Joe no longer has John among advisees.
        assert db.query('From instructor Retrieve count(advisees) of'
                        ' instructor Where name = "Joe Bloke"').scalar() == 0

    def test_include_exclude_on_mv_eva(self, small_university):
        db = small_university
        db.execute('Modify student(courses-enrolled := include course with'
                   ' (title = "Calculus I")) Where name = "John Doe"')
        assert db.query('From student Retrieve count(courses-enrolled) of'
                        ' student Where name = "John Doe"').scalar() == 2
        db.execute('Modify student(courses-enrolled := exclude'
                   ' courses-enrolled with (title = "Algebra I"))'
                   ' Where name = "John Doe"')
        rows = db.query('From student Retrieve title of courses-enrolled'
                        ' Where name = "John Doe"').rows
        assert rows == [("Calculus I",)]

    def test_include_duplicate_is_noop(self, small_university):
        db = small_university
        db.execute('Modify student(courses-enrolled := include course with'
                   ' (title = "Algebra I")) Where name = "John Doe"')
        assert db.query('From student Retrieve count(courses-enrolled) of'
                        ' student Where name = "John Doe"').scalar() == 1

    def test_exclude_all_with_bare_eva_name(self, small_university):
        db = small_university
        db.execute('Modify student(courses-enrolled := exclude'
                   ' courses-enrolled) Where name = "John Doe"')
        assert db.query('From student Retrieve count(courses-enrolled) of'
                        ' student Where name = "John Doe"').scalar() == 0

    def test_max_cardinality_enforced(self, small_university):
        db = small_university
        # courses-taught has MAX 3.
        for title in ("Algebra I", "Calculus I", "Quantum Chromodynamics"):
            db.execute(f'Modify instructor(courses-taught := include course'
                       f' with (title = "{title}"))'
                       f' Where name = "Joe Bloke"')
        db.execute('Insert course(course-no := 301, title := "More",'
                   ' credits := 1)')
        with pytest.raises(CardinalityViolation):
            db.execute('Modify instructor(courses-taught := include course'
                       ' with (title = "More")) Where name = "Joe Bloke"')

    def test_inverse_side_max_enforced(self, empty_university):
        db = empty_university
        db.execute('Insert course(course-no := 1, title := "T", credits := 1)')
        # teachers has MAX 7 on the course side.
        for k in range(7):
            db.execute(f'Insert instructor(soc-sec-no := {k + 1},'
                       f' employee-nbr := {1001 + k},'
                       f' courses-taught := course with (title = "T"))')
        with pytest.raises(CardinalityViolation):
            db.execute('Insert instructor(soc-sec-no := 99,'
                       ' employee-nbr := 1099,'
                       ' courses-taught := course with (title = "T"))')

    def test_required_cannot_be_nulled(self, small_university):
        with pytest.raises(Exception):
            small_university.execute(
                'Modify course(title := unknown-thing)'
                ' Where course-no = 101')

    def test_sv_eva_single_valuedness_enforced(self, small_university):
        db = small_university
        # The inverse of spouse is single-valued: marrying A to B then C to
        # B must fail.
        db.execute('Insert person(name := "A", soc-sec-no := 11)')
        db.execute('Insert person(name := "B", soc-sec-no := 12)')
        db.execute('Insert person(name := "C", soc-sec-no := 13)')
        db.execute('Modify person(spouse := person with (name = "B"))'
                   ' Where name = "A"')
        with pytest.raises((CardinalityViolation, IntegrityError)):
            db.execute('Modify person(spouse := person with (name = "B"))'
                       ' Where name = "C"')


class TestDelete:
    def test_delete_subclass_role_keeps_superclass(self, small_university):
        db = small_university
        db.execute('Delete student Where name = "John Doe"')
        assert len(db.query('From student Retrieve name'
                            ' Where name = "John Doe"')) == 0
        assert len(db.query('From person Retrieve name'
                            ' Where name = "John Doe"')) == 1

    def test_delete_base_cascades_to_all_roles(self, small_university):
        db = small_university
        db.execute('Delete person Where name = "John Doe"')
        assert len(db.query('From student Retrieve name'
                            ' Where name = "John Doe"')) == 0

    def test_delete_removes_eva_instances(self, small_university):
        db = small_university
        db.execute('Delete person Where name = "Joe Bloke"')
        rows = db.query('From student Retrieve name, name of advisor'
                        ' Where name = "John Doe"').rows
        assert is_null(rows[0][1])

    def test_delete_count(self, small_university):
        assert small_university.execute("Delete course") == 3

    def test_delete_with_subclass_cascade_counts_entity_once(
            self, empty_university):
        db = empty_university
        db.execute('Insert teaching-assistant(soc-sec-no := 1,'
                   ' employee-nbr := 1001)')
        assert db.execute("Delete student") == 1
        # instructor role survives (deleted only the student branch + TA).
        assert len(db.query("From instructor Retrieve soc-sec-no")) == 1
        assert len(db.query("From teaching-assistant Retrieve soc-sec-no")) \
            == 0
