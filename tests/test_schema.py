"""Schema construction and resolution tests (paper §3)."""

import pytest

from repro.errors import SchemaError
from repro.schema import (
    AttributeOptions,
    DataValuedAttribute,
    EntityValuedAttribute,
    Schema,
    SimClass,
    SubroleAttribute,
    VerifyConstraint,
)
from repro.types.domain import IntegerType, StringType, SubroleType


def two_class_schema():
    schema = Schema("pair")
    a = SimClass("alpha")
    a.add_attribute(DataValuedAttribute("a-key", IntegerType(),
                                        AttributeOptions(unique=True,
                                                         required=True)))
    a.add_attribute(EntityValuedAttribute("betas", "beta", "alpha-of",
                                          AttributeOptions(mv=True)))
    schema.add_class(a)
    b = SimClass("beta")
    b.add_attribute(DataValuedAttribute("b-data", StringType(10)))
    b.add_attribute(EntityValuedAttribute("alpha-of", "alpha", "betas"))
    schema.add_class(b)
    return schema


class TestAttributeOptions:
    def test_defaults(self):
        options = AttributeOptions()
        assert not options.required and not options.mv

    def test_distinct_requires_mv(self):
        with pytest.raises(SchemaError):
            AttributeOptions(distinct=True)

    def test_max_requires_mv(self):
        with pytest.raises(SchemaError):
            AttributeOptions(max_cardinality=3)

    def test_max_positive(self):
        with pytest.raises(SchemaError):
            AttributeOptions(mv=True, max_cardinality=0)

    def test_unique_mv_rejected(self):
        with pytest.raises(SchemaError):
            AttributeOptions(unique=True, mv=True)

    def test_ddl_rendering(self):
        options = AttributeOptions(mv=True, distinct=True, max_cardinality=3)
        assert options.ddl() == "mv (max 3, distinct)"


class TestResolution:
    def test_inverse_pairing(self):
        schema = two_class_schema().resolve()
        betas = schema.get_class("alpha").attribute("betas")
        alpha_of = schema.get_class("beta").attribute("alpha-of")
        assert betas.inverse is alpha_of
        assert alpha_of.inverse is betas
        assert betas.relationship_kind() == "1:many"
        assert alpha_of.relationship_kind() == "many:1"

    def test_one_sided_declaration_synthesizes_inverse(self):
        schema = Schema()
        a = SimClass("a")
        a.add_attribute(EntityValuedAttribute("partner", "b"))
        schema.add_class(a)
        schema.add_class(SimClass("b"))
        schema.resolve()
        inverse = schema.get_class("a").attribute("partner").inverse
        assert inverse.owner_name == "b"
        assert inverse.multi_valued
        assert inverse.synthesized_inverse

    def test_named_one_sided_inverse(self):
        schema = Schema()
        a = SimClass("a")
        a.add_attribute(EntityValuedAttribute("partner", "b", "partner-of"))
        schema.add_class(a)
        schema.add_class(SimClass("b"))
        schema.resolve()
        inverse = schema.get_class("b").attribute("partner-of")
        assert inverse.inverse.name == "partner"
        assert not inverse.synthesized_inverse

    def test_reflexive_self_inverse(self):
        schema = Schema()
        p = SimClass("p")
        p.add_attribute(EntityValuedAttribute("spouse", "p", "spouse"))
        schema.add_class(p)
        schema.resolve()
        spouse = schema.get_class("p").attribute("spouse")
        assert spouse.inverse is spouse
        assert spouse.relationship_kind() == "1:1"

    def test_mismatched_inverse_names_rejected(self):
        schema = Schema()
        a = SimClass("a")
        a.add_attribute(EntityValuedAttribute("x", "b", "y"))
        schema.add_class(a)
        b = SimClass("b")
        b.add_attribute(EntityValuedAttribute("y", "a", "z"))
        schema.add_class(b)
        with pytest.raises(SchemaError):
            schema.resolve()

    def test_inverse_range_mismatch_rejected(self):
        schema = Schema()
        a = SimClass("a")
        a.add_attribute(EntityValuedAttribute("x", "b", "y"))
        schema.add_class(a)
        b = SimClass("b")
        b.add_attribute(EntityValuedAttribute("y", "c", "x"))
        schema.add_class(b)
        schema.add_class(SimClass("c"))
        with pytest.raises(SchemaError):
            schema.resolve()

    def test_unknown_range_class(self):
        schema = Schema()
        a = SimClass("a")
        a.add_attribute(EntityValuedAttribute("x", "ghost"))
        schema.add_class(a)
        with pytest.raises(SchemaError):
            schema.resolve()

    def test_surrogate_planted_and_inherited(self):
        schema = Schema()
        schema.add_class(SimClass("base"))
        schema.add_class(SimClass("sub", ["base"]))
        schema.resolve()
        base = schema.get_class("base")
        sub = schema.get_class("sub")
        assert base.surrogate_attribute is not None
        assert sub.surrogate_attribute is base.surrogate_attribute

    def test_inherited_attributes_visible(self):
        schema = Schema()
        base = SimClass("base")
        base.add_attribute(DataValuedAttribute("name", StringType(10)))
        schema.add_class(base)
        schema.add_class(SimClass("sub", ["base"]))
        schema.resolve()
        assert schema.get_class("sub").has_attribute("name")
        assert schema.get_class("sub").attribute("name").owner_name == "base"

    def test_shadowing_inherited_attribute_rejected(self):
        schema = Schema()
        base = SimClass("base")
        base.add_attribute(DataValuedAttribute("name", StringType(10)))
        schema.add_class(base)
        sub = SimClass("sub", ["base"])
        sub.add_attribute(DataValuedAttribute("name", StringType(10)))
        schema.add_class(sub)
        with pytest.raises(SchemaError):
            schema.resolve()

    def test_subrole_synthesized_when_missing(self):
        schema = Schema()
        schema.add_class(SimClass("base"))
        schema.add_class(SimClass("sub", ["base"]))
        schema.resolve()
        subrole = schema.get_class("base").subrole_attribute
        assert subrole is not None
        assert list(subrole.subclass_names) == ["sub"]

    def test_subrole_strict_mode(self):
        schema = Schema()
        schema.add_class(SimClass("base"))
        schema.add_class(SimClass("sub", ["base"]))
        with pytest.raises(SchemaError):
            schema.resolve(synthesize_subroles=False)

    def test_declared_subrole_validated(self):
        schema = Schema()
        base = SimClass("base")
        base.add_attribute(SubroleAttribute("roles",
                                            SubroleType(["wrong-name"])))
        schema.add_class(base)
        schema.add_class(SimClass("sub", ["base"]))
        with pytest.raises(SchemaError):
            schema.resolve()

    def test_schema_immutable_after_resolution(self):
        schema = two_class_schema().resolve()
        with pytest.raises(SchemaError):
            schema.add_class(SimClass("late"))

    def test_duplicate_class(self):
        schema = Schema()
        schema.add_class(SimClass("a"))
        with pytest.raises(SchemaError):
            schema.add_class(SimClass("A"))

    def test_duplicate_attribute(self):
        sim_class = SimClass("a")
        sim_class.add_attribute(DataValuedAttribute("x", IntegerType()))
        with pytest.raises(SchemaError):
            sim_class.add_attribute(DataValuedAttribute("X", IntegerType()))


class TestStatistics:
    def test_university_shape(self, university_schema):
        stats = university_schema.statistics()
        assert stats["base_classes"] == 3
        assert stats["subclasses"] == 3
        assert stats["eva_inverse_pairs"] == 8
        assert stats["max_hierarchy_depth"] == 3

    def test_constraints_attached(self, university_schema):
        student = university_schema.get_class("student")
        assert [c.name for c in student.constraints] == ["v1"]

    def test_ddl_roundtrip(self, university_schema):
        from repro import parse_ddl
        rendered = university_schema.ddl()
        reparsed = parse_ddl(rendered)
        assert (reparsed.statistics()
                == university_schema.statistics())
