"""DML parser tests (paper §4 syntax)."""

import pytest
from decimal import Decimal

from repro import parse_dml, parse_expression
from repro.errors import DMLSyntaxError
from repro.dml.ast import (
    Aggregate,
    Binary,
    DeleteStatement,
    EntitySelector,
    InsertStatement,
    IsaTest,
    Literal,
    ModifyStatement,
    Path,
    Quantified,
    RetrieveQuery,
    Unary,
)


class TestRetrieveSyntax:
    def test_minimal(self):
        q = parse_dml("From Student Retrieve Name")
        assert isinstance(q, RetrieveQuery)
        assert q.perspectives[0].class_name == "student"
        assert q.mode == "table" and not q.distinct

    def test_table_distinct(self):
        q = parse_dml("From Student Retrieve Table Distinct Name")
        assert q.distinct

    def test_structure_mode(self):
        q = parse_dml("From Student Retrieve Structure Name")
        assert q.mode == "structure"

    def test_no_from_clause(self):
        q = parse_dml("Retrieve Name of Student")
        assert q.perspectives == []

    def test_multi_perspective_with_vars(self):
        q = parse_dml("From student s1, student s2 Retrieve name of s1")
        assert [p.effective_var for p in q.perspectives] == ["s1", "s2"]

    def test_order_by_before_where(self):
        q = parse_dml("From student Retrieve name Order By name Desc "
                      "Where name neq \"x\"")
        assert q.order_by[0].descending
        assert q.where is not None

    def test_order_by_after_where(self):
        q = parse_dml('From student Retrieve name Where name neq "x" '
                      "Order By name")
        assert not q.order_by[0].descending

    def test_qualification_chain(self):
        q = parse_dml("From Student Retrieve Name of Teachers of "
                      "Courses-Enrolled of Student")
        path = q.targets[0].expression
        assert [s.name for s in path.steps] == [
            "name", "teachers", "courses-enrolled", "student"]

    def test_as_role_conversion(self):
        q = parse_dml("From Student Retrieve Teaching-Load of Student as "
                      "Teaching-Assistant")
        assert q.targets[0].expression.steps[-1].as_class == \
            "teaching-assistant"

    def test_inverse_construct(self):
        q = parse_dml("From instructor Retrieve name of INVERSE(advisor)")
        step = q.targets[0].expression.steps[1]
        assert step.inverse_of and step.name == "advisor"

    def test_transitive_construct(self):
        q = parse_dml("Retrieve Title of Transitive(prerequisites) of Course")
        step = q.targets[0].expression.steps[1]
        assert step.transitive and step.name == "prerequisites"

    def test_parenthetic_factoring(self):
        q = parse_dml("From person Retrieve (name, birthdate) of spouse")
        assert len(q.targets) == 2
        assert [s.name for s in q.targets[0].expression.steps] == [
            "name", "spouse"]
        assert [s.name for s in q.targets[1].expression.steps] == [
            "birthdate", "spouse"]


class TestExpressions:
    def test_precedence_and_or_not(self):
        e = parse_expression("a = 1 or b = 2 and not c = 3")
        assert e.op == "or"
        assert e.right.op == "and"
        assert isinstance(e.right.right, Unary)

    def test_arithmetic_precedence(self):
        e = parse_expression("1 + 2 * 3")
        assert e.op == "+" and e.right.op == "*"

    def test_decimal_literal(self):
        e = parse_expression("1.1 * salary")
        assert e.left.value == Decimal("1.1")

    def test_comparison_operators(self):
        for op_text, op in [("=", "="), ("<", "<"), (">=", ">="),
                            ("neq", "neq"), ("!=", "neq"), ("<>", "neq")]:
            e = parse_expression(f"a {op_text} 1")
            assert e.op == op

    def test_like(self):
        e = parse_expression('name like "J%"')
        assert e.op == "like"

    def test_isa(self):
        e = parse_expression("instructor isa teaching-assistant")
        assert isinstance(e, IsaTest)
        assert e.class_name == "teaching-assistant"

    def test_aggregate_with_outer_scope(self):
        e = parse_expression("count(courses-taught) of instructor > 3")
        aggregate = e.left
        assert isinstance(aggregate, Aggregate)
        assert aggregate.func == "count"
        assert [s.name for s in aggregate.outer] == ["instructor"]

    def test_count_distinct_both_spellings(self):
        for text in ("count distinct (x)", "count(distinct x)"):
            e = parse_expression(text)
            assert e.distinct

    def test_quantified_comparison(self):
        e = parse_expression("a neq some(b of c)")
        assert isinstance(e.right, Quantified)
        assert e.right.quantifier == "some"

    def test_quantifier_words(self):
        for word in ("some", "all", "no"):
            e = parse_expression(f"a = {word}(b)")
            assert e.right.quantifier == word

    def test_aggregate_name_without_paren_is_path(self):
        e = parse_expression("count of student")
        assert isinstance(e, Path)

    def test_functions(self):
        e = parse_expression('length(name) > 3')
        assert e.left.name == "length"

    def test_unary_minus(self):
        e = parse_expression("-5 + 3")
        assert isinstance(e.left, Unary)


class TestUpdateSyntax:
    def test_insert_plain(self):
        s = parse_dml('Insert person(name := "A", soc-sec-no := 1)')
        assert isinstance(s, InsertStatement)
        assert s.from_class is None
        assert [a.attribute for a in s.assignments] == ["name", "soc-sec-no"]

    def test_insert_without_assignments(self):
        s = parse_dml("Insert person")
        assert s.assignments == []

    def test_insert_from(self):
        s = parse_dml('Insert instructor From person Where name = "X" '
                      '(employee-nbr := 1729)')
        assert s.from_class == "person"
        assert s.from_where is not None

    def test_with_selector(self):
        s = parse_dml('Insert student(advisor := instructor with '
                      '(name = "Joe"))')
        value = s.assignments[0].value
        assert isinstance(value, EntitySelector)
        assert value.name == "instructor"

    def test_include_exclude(self):
        s = parse_dml('Modify student('
                      'courses-enrolled := exclude courses-enrolled with '
                      '(title = "Algebra I"), '
                      'advisor := instructor with (name = "Joe")) '
                      'Where name = "John"')
        assert isinstance(s, ModifyStatement)
        assert s.assignments[0].op == "exclude"
        assert s.assignments[0].value.name == "courses-enrolled"
        assert s.assignments[1].op == "set"

    def test_modify_requires_assignments(self):
        with pytest.raises(DMLSyntaxError):
            parse_dml("Modify student() Where name = \"x\"")

    def test_delete(self):
        s = parse_dml('Delete student Where name = "John Doe"')
        assert isinstance(s, DeleteStatement)
        assert s.class_name == "student"

    def test_delete_without_where(self):
        s = parse_dml("Delete student")
        assert s.where is None


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(DMLSyntaxError):
            parse_dml("From student Retrieve name name2 name3 :=")

    def test_unknown_statement(self):
        with pytest.raises(DMLSyntaxError):
            parse_dml("Upsert student")

    def test_error_carries_position(self):
        try:
            parse_dml("From Retrieve")
        except DMLSyntaxError as exc:
            assert exc.line == 1
        else:
            pytest.fail("expected a syntax error")
