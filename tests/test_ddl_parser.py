"""DDL parser tests against the §7 concrete syntax."""

import pytest

from repro import parse_ddl
from repro.errors import DDLSyntaxError, SchemaError
from repro.types.domain import NumberType, StringType, SymbolicType
from repro.workloads import UNIVERSITY_DDL


class TestUniversityDDL:
    def test_full_schema_parses(self, university_schema):
        names = set(university_schema.class_names())
        assert names == {"person", "student", "instructor",
                         "teaching-assistant", "course", "department"}

    def test_named_types(self, university_schema):
        id_number = university_schema.types.lookup("id-number")
        assert id_number.validate(1001) == 1001
        with pytest.raises(Exception):
            id_number.validate(50000)
        degree = university_schema.types.lookup("degree")
        assert isinstance(degree, SymbolicType)

    def test_attribute_options_parsed(self, university_schema):
        ssn = university_schema.get_class("person").attribute("soc-sec-no")
        assert ssn.options.unique and ssn.options.required
        advisees = university_schema.get_class("instructor").attribute(
            "advisees")
        assert advisees.options.mv
        assert advisees.options.max_cardinality == 10
        taught = university_schema.get_class("instructor").attribute(
            "courses-taught")
        assert taught.options.max_cardinality == 3
        assert taught.options.distinct

    def test_number_type(self, university_schema):
        salary = university_schema.get_class("instructor").attribute("salary")
        assert isinstance(salary.data_type, NumberType)
        assert (salary.data_type.precision, salary.data_type.scale) == (9, 2)

    def test_subroles_declared(self, university_schema):
        person = university_schema.get_class("person")
        assert person.subrole_attribute.name == "profession"
        assert set(person.subrole_attribute.subclass_names) == {
            "student", "instructor"}

    def test_verify_constraints(self, university_schema):
        names = [c.name for c in university_schema.constraints]
        assert names == ["v1", "v2"]
        v2 = university_schema.constraints[1]
        assert v2.class_name == "instructor"
        assert "100000" in v2.assertion_text
        assert v2.else_message == "instructor makes too much money"

    def test_multiple_inheritance(self, university_schema):
        ta = university_schema.get_class("teaching-assistant")
        assert set(ta.superclass_names) == {"student", "instructor"}
        assert ta.has_attribute("name")          # via both paths
        assert ta.has_attribute("teaching-load")


class TestPieces:
    def test_comment_handling(self):
        schema = parse_ddl("(* hello *) Class C ( x: integer );")
        assert schema.has_class("c")

    def test_comma_separated_options(self):
        # The paper itself writes "integer, unique, required".
        schema = parse_ddl("Class C ( x: integer, unique, required );")
        options = schema.get_class("c").attribute("x").options
        assert options.unique and options.required

    def test_space_separated_options(self):
        schema = parse_ddl("Class C ( x: integer unique required );")
        options = schema.get_class("c").attribute("x").options
        assert options.unique and options.required

    def test_string_bound(self):
        schema = parse_ddl("Class C ( s: string[4] );")
        assert isinstance(schema.get_class("c").attribute("s").data_type,
                          StringType)

    def test_forward_class_reference(self):
        schema = parse_ddl("""
            Class A ( b-ref: b );
            Class B ( name: string[5] );
        """)
        assert schema.get_class("a").attribute("b-ref").is_eva

    def test_named_type_must_be_declared_before_use(self):
        with pytest.raises(SchemaError):
            # t is undeclared: 't' is treated as a class reference and the
            # schema fails to resolve.
            parse_ddl("Class C ( x: t );")

    def test_type_declaration_reuse(self):
        schema = parse_ddl("""
            Type small = integer (1..5);
            Class C ( x: small; y: small );
        """)
        x = schema.get_class("c").attribute("x")
        assert x.type_name == "small"

    def test_negative_ranges(self):
        schema = parse_ddl("Class C ( t: integer (-10..-1) );")
        t = schema.get_class("c").attribute("t").data_type
        assert t.validate(-5) == -5

    def test_syntax_error_position(self):
        with pytest.raises(DDLSyntaxError) as info:
            parse_ddl("Class ( x: integer );")
        assert "class name" in str(info.value)

    def test_missing_else_in_verify(self):
        with pytest.raises(DDLSyntaxError):
            parse_ddl("Class C (x: integer); Verify v on c assert x > 0")

    def test_unresolved_parse_can_be_extended(self):
        schema = parse_ddl("Class A ( x: integer );", resolve=False)
        assert not schema.resolved
        parse_ddl("Class B ( y: integer );", schema=schema)
        assert schema.resolved
        assert schema.has_class("a") and schema.has_class("b")
