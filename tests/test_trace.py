"""End-to-end query tracing and EXPLAIN ANALYZE.

Covers the span recorder itself, the per-layer instrumentation threaded
through Figure 1 (parser, optimizer, executor, Mapper, storage), the
three surfaces (``explain_analyze``, JSONL export, histograms), the
no-span-leak guarantee under injected faults, and the learned-cardinality
feedback loop into the optimizer.
"""

import json

import pytest

from repro import Database
from repro.errors import InjectedCrash, SimError
from repro.trace import TraceRecorder, attach_tracing, detach_tracing
from repro.workloads import UNIVERSITY_DDL
from repro.workloads.university import UNIVERSITY_QUERIES, build_university


@pytest.fixture()
def traced_university():
    database = build_university(departments=4, instructors=10, students=40,
                                courses=20, seed=7)
    database.enable_tracing()
    return database


class TestRecorder:
    def test_disabled_recorder_records_nothing(self):
        recorder = TraceRecorder(enabled=False)
        with recorder.span("outer", layer="test") as span:
            assert span is None
            recorder.count("things")
            recorder.event("boom")
        assert len(recorder.statements) == 0
        assert recorder.open_spans() == 0

    def test_span_nesting_and_timing(self):
        recorder = TraceRecorder()
        recorder.begin_statement("stmt")
        with recorder.span("a", layer="one"):
            with recorder.span("b", layer="two"):
                recorder.count("inner", 3)
        root = recorder.end_statement()
        assert root.closed and root.duration_ms >= 0
        (a,) = root.children
        (b,) = a.children
        assert (a.name, b.name) == ("a", "b")
        assert b.counts["inner"] == 3

    def test_span_records_error_and_closes(self):
        recorder = TraceRecorder()
        recorder.begin_statement("stmt")
        with pytest.raises(ValueError):
            with recorder.span("work", layer="test"):
                raise ValueError("boom")
        root = recorder.end_statement("ValueError: boom")
        assert root.children[0].error == "ValueError: boom"
        assert root.children[0].closed
        assert recorder.open_spans() == 0

    def test_capacity_bounds_retention(self):
        recorder = TraceRecorder(capacity=3)
        for i in range(5):
            recorder.begin_statement(f"s{i}")
            recorder.end_statement()
        assert len(recorder.statements) == 3
        assert recorder.last().attrs["text"] == "s4"


class TestExplainAnalyze:
    def test_twelve_query_sweep(self, traced_university):
        database = traced_university
        for text in UNIVERSITY_QUERIES:
            result = database.query(text)
            assert database.trace.open_spans() == 0, text
            rendered = result.explain_analyze()
            # Layer spans are all present...
            for layer in ("qualifier", "optimizer", "executor"):
                assert f"[{layer}]" in rendered, text
            # ...and the annotated tree shows TYPE labels with both
            # estimated and actual cardinalities per node.
            assert "TYPE" in rendered, text
            assert "est=" in rendered and "actual=" in rendered, text

    def test_actual_rows_match_result_cardinality(self, traced_university):
        database = traced_university
        for text in UNIVERSITY_QUERIES:
            result = database.query(text)
            execute = result.trace.find("execute")
            assert execute is not None, text
            assert execute.attrs["output_rows"] == len(result), text

    def test_untraced_result_raises(self):
        database = build_university(departments=2, instructors=3,
                                    students=8, courses=6, seed=1)
        result = database.query("From department Retrieve name")
        with pytest.raises(ValueError, match="not traced"):
            result.explain_analyze()

    def test_update_statements_are_traced(self, traced_university):
        database = traced_university
        database.execute('Insert person(name := "Tracey",'
                         ' soc-sec-no := 987654)')
        root = database.trace.last()
        names = [span.name for span in root.walk()]
        assert "update" in names and "lint" in names
        rendered = root.render()
        assert "storage.record_mutations" in rendered

    def test_mapper_and_storage_counts_surface(self, traced_university):
        database = traced_university
        database.cold_cache()
        result = database.query(
            "From student Retrieve name, name of advisor")
        rendered = result.explain_analyze()
        assert "mapper.records_decoded" in rendered
        assert "storage.physical_reads" in rendered


class TestNoSpanLeaks:
    def test_faulting_statement_closes_every_span(self):
        database = build_university(departments=2, instructors=3,
                                    students=8, courses=6, seed=3)
        database.store.pool.flush()
        recorder = database.enable_tracing()
        injector = database.install_faults()
        injector.crash_after_writes(1)
        with pytest.raises(InjectedCrash):
            database.execute('Insert person(name := "Doomed",'
                             ' soc-sec-no := 424242)')
        assert recorder.open_spans() == 0
        root = recorder.last()
        assert root.closed
        assert root.error and "InjectedCrash" in root.error
        for span in root.walk():
            assert span.closed, span.name

    def test_failed_parse_closes_statement(self, traced_university):
        database = traced_university
        with pytest.raises(SimError):
            database.execute("From nowhere Retrieve nothing at all;;;")
        assert database.trace.open_spans() == 0
        assert database.trace.last().closed


class TestSurfaces:
    def test_jsonl_export_is_valid(self, traced_university):
        database = traced_university
        for text in UNIVERSITY_QUERIES[:4]:
            database.query(text)
        lines = database.trace_jsonl().splitlines()
        assert len(lines) == 4
        for line in lines:
            tree = json.loads(line)
            assert tree["name"] == "statement"
            assert any(child["name"] == "execute"
                       for child in tree["children"])

    def test_histograms_populate(self, traced_university):
        database = traced_university
        for text in UNIVERSITY_QUERIES:
            database.query(text)
        histograms = database.trace.histograms.as_dict()
        assert histograms["latency_us"]["executor"]["count"] == 12
        assert histograms["latency_us"]["driver"]["count"] == 12
        assert histograms["rows_per_node"]["TYPE 1"]["count"] >= 12

    def test_statistics_include_trace(self, traced_university):
        database = traced_university
        database.query(UNIVERSITY_QUERIES[0])
        assert "trace" in database.statistics()

    def test_detach_restores_null_hooks(self, traced_university):
        database = traced_university
        database.disable_tracing(detach=True)
        store = database.store
        assert store.trace is None
        assert store.read_cache.trace is None
        assert store.wal.trace is None
        assert store.pool.trace is None
        result = database.query(UNIVERSITY_QUERIES[0])
        assert result.trace is None

    def test_attach_detach_roundtrip(self):
        database = Database(UNIVERSITY_DDL, constraint_mode="off")
        recorder = attach_tracing(database.store)
        assert database.store.trace is recorder
        detach_tracing(database.store)
        assert database.store.trace is None


class TestOptimizerFeedback:
    def test_traced_actuals_feed_cost_model(self, traced_university):
        database = traced_university
        assert database.optimizer.fanout_feedback() is None
        database.query("From student Retrieve name, name of advisor")
        feedback = database.optimizer.fanout_feedback()
        assert feedback is not None
        assert feedback[("student", "advisor")] == pytest.approx(1.0)

    def test_feedback_changes_estimates(self, traced_university):
        database = traced_university
        text = "From student Retrieve name, name of advisor"
        first = database.query(text)
        second = database.query(text)
        # After feedback the advisor node's estimate equals the actual.
        rendered = second.explain_analyze()
        assert "est=40.0 actual=40" in rendered


class TestFrontEnds:
    def test_iqf_trace_command(self, traced_university):
        from repro.interfaces.iqf import run_script
        out = run_script(traced_university,
                         ".trace From department Retrieve name\n")
        assert "statement [driver]" in out
        assert "[optimizer]" in out and "TYPE 1" in out

    def test_iqf_trace_on_off(self):
        from repro.interfaces.iqf import run_script
        database = build_university(departments=2, instructors=3,
                                    students=8, courses=6, seed=5)
        out = run_script(database,
                         ".trace on\nFrom department Retrieve name;\n"
                         ".trace off\n")
        assert "tracing on" in out and "tracing off" in out
        assert database.trace.last() is not None

    def test_cli_trace_subcommand(self, capsys):
        from repro.__main__ import main
        code = main(["trace", "--university"])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        header = json.loads(lines[0])
        assert "layout" in header and header["statements"] == 12
        assert len(lines) == 13
        for line in lines[1:]:
            json.loads(line)
