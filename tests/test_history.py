"""Temporal history tests (paper §6: "temporal data").

The change journal ticks once per update statement; as-of reconstruction
inverts newer events over the current state.
"""

import pytest

from repro import Database, SimError
from repro.types.tvl import is_null
from repro.workloads import UNIVERSITY_DDL


@pytest.fixture()
def db():
    database = Database(UNIVERSITY_DDL, constraint_mode="off",
                        track_history=True)
    database.execute('Insert course(course-no := 1, title := "A",'
                     ' credits := 3)')                                 # t1
    database.execute('Insert course(course-no := 2, title := "B",'
                     ' credits := 4)')                                 # t2
    database.execute('Insert student(soc-sec-no := 1, courses-enrolled :='
                     ' course with (title = "A"))')                    # t3
    return database


def student(db):
    return db.query("From student Retrieve student").scalar()


class TestScalarHistory:
    def test_set_events_recorded(self, db):
        db.execute('Modify student(name := "First") Where soc-sec-no = 1')
        db.execute('Modify student(name := "Second") Where soc-sec-no = 1')
        events = db.attribute_history(student(db), "name")
        assert [(e.old, e.new) for e in events if e.kind == "set"] == [
            (None, "First"), ("First", "Second")] or \
            [e.new for e in events if e.kind == "set"][-2:] == [
                "First", "Second"]

    def test_scalar_as_of(self, db):
        course = db.query('From course Retrieve course'
                          ' Where title = "B"').scalar()
        db.execute('Modify course(credits := 9) Where title = "B"')   # t4
        db.execute('Modify course(credits := 11) Where title = "B"')  # t5
        assert db.value_as_of(course, "course", "credits", 3) == 4
        assert db.value_as_of(course, "course", "credits", 4) == 9
        assert db.value_as_of(course, "course", "credits", 5) == 11

    def test_clock_ticks_per_statement(self, db):
        before = db.clock
        db.execute('Modify course(credits := 5) Where title = "A"')
        db.execute('Modify course(credits := 6) Where title = "A"')
        assert db.clock == before + 2

    def test_queries_do_not_tick(self, db):
        before = db.clock
        db.query("From course Retrieve title")
        assert db.clock == before


class TestCollectionHistory:
    def test_eva_as_of(self, db):
        surr = student(db)
        course_a = db.query('From course Retrieve course'
                            ' Where title = "A"').scalar()
        course_b = db.query('From course Retrieve course'
                            ' Where title = "B"').scalar()
        db.execute('Modify student(courses-enrolled := include course with'
                   ' (title = "B")) Where soc-sec-no = 1')             # t4
        db.execute('Modify student(courses-enrolled := exclude'
                   ' courses-enrolled with (title = "A"))'
                   ' Where soc-sec-no = 1')                            # t5
        assert db.value_as_of(surr, "student", "courses-enrolled", 3) == \
            [course_a]
        assert sorted(db.value_as_of(surr, "student", "courses-enrolled",
                                     4)) == sorted([course_a, course_b])
        assert db.value_as_of(surr, "student", "courses-enrolled", 5) == \
            [course_b]

    def test_inverse_side_history_recorded(self, db):
        course_a = db.query('From course Retrieve course'
                            ' Where title = "A"').scalar()
        events = db.attribute_history(course_a, "students-enrolled")
        assert [e.kind for e in events] == ["include"]

    def test_history_in_aborted_statement_nets_out(self, db):
        from repro.errors import UniquenessViolation
        surr = student(db)
        tick = db.clock
        with pytest.raises(UniquenessViolation):
            # fails after the include: soc-sec-no collision rolls back
            db.execute('Insert student(soc-sec-no := 1, courses-enrolled'
                       ' := course with (title = "B"))')
        assert db.value_as_of(surr, "student", "courses-enrolled",
                              db.clock) == \
            db.value_as_of(surr, "student", "courses-enrolled", tick)


class TestRoleHistory:
    def test_role_acquisition_ticks(self, db):
        surr = student(db)
        assert not db.had_role_at(surr, "student", 2)
        assert db.had_role_at(surr, "student", 3)

    def test_role_loss(self, db):
        surr = student(db)
        db.execute('Delete student Where soc-sec-no = 1')   # t4
        assert db.had_role_at(surr, "student", 3)
        assert not db.had_role_at(surr, "student", db.clock)
        assert db.had_role_at(surr, "person", db.clock)

    def test_role_extension_recorded(self, db):
        surr = student(db)
        db.execute('Insert instructor From person Where soc-sec-no = 1'
                   ' (employee-nbr := 1001)')
        events = db.role_history(surr)
        acquired = [e.new for e in events if e.kind == "role+"]
        assert "instructor" in acquired


class TestApi:
    def test_history_off_by_default(self):
        plain = Database(UNIVERSITY_DDL, constraint_mode="off")
        with pytest.raises(SimError):
            _ = plain.clock

    def test_value_as_of_before_existence_is_null(self, db):
        course = db.query('From course Retrieve course'
                          ' Where title = "A"').scalar()
        assert is_null(db.value_as_of(course, "course", "credits", 0))

    def test_event_describe(self, db):
        db.execute('Modify course(credits := 9) Where title = "A"')
        event = db.attribute_history(
            db.query('From course Retrieve course Where title = "A"'
                     ).scalar(), "credits")[-1]
        assert "->" in event.describe()
