"""Fine-grained fidelity checks for rules the paper states in passing."""

import pytest

from repro import Database, parse_dml
from repro.types.tvl import is_null


class TestNullsAndUniqueness:
    DDL = """
    Class Part (
      serial: integer unique;
      label: string[10] required );
    """

    def test_nulls_omitted_from_uniqueness(self):
        # §3.2.1: "Null values are omitted from uniqueness considerations."
        db = Database(self.DDL, constraint_mode="off")
        db.execute('Insert part(label := "a")')
        db.execute('Insert part(label := "b")')   # second null serial: fine
        assert len(db.query("From part Retrieve label")) == 2

    def test_non_null_duplicates_still_rejected(self):
        from repro import UniquenessViolation
        db = Database(self.DDL, constraint_mode="off")
        db.execute('Insert part(label := "a", serial := 1)')
        with pytest.raises(UniquenessViolation):
            db.execute('Insert part(label := "b", serial := 1)')

    def test_deleting_holder_frees_unique_value(self):
        db = Database(self.DDL, constraint_mode="off")
        db.execute('Insert part(label := "a", serial := 1)')
        db.execute('Delete part Where label = "a"')
        db.execute('Insert part(label := "b", serial := 1)')
        assert db.query("From part Retrieve label"
                        " Where serial = 1").scalar() == "b"


class TestRelationshipDependency:
    """§3.2.1: REQUIRED on an EVA/inverse defines total dependency."""

    DDL = """
    Class Order (
      order-no: integer unique required;
      placed-by: customer inverse is orders required );
    Class Customer (
      cust-no: integer unique required;
      orders: order inverse is placed-by mv );
    """

    def test_total_dependency_on_insert(self):
        from repro import RequiredViolation
        db = Database(self.DDL, constraint_mode="off")
        db.execute('Insert customer(cust-no := 1)')
        with pytest.raises(RequiredViolation):
            db.execute('Insert order(order-no := 1)')
        db.execute('Insert order(order-no := 1,'
                   ' placed-by := customer with (cust-no = 1))')

    def test_total_dependency_on_partner_delete(self):
        from repro import RequiredViolation
        db = Database(self.DDL, constraint_mode="off")
        db.execute('Insert customer(cust-no := 1)')
        db.execute('Insert order(order-no := 1,'
                   ' placed-by := customer with (cust-no = 1))')
        with pytest.raises(RequiredViolation):
            db.execute('Delete customer Where cust-no = 1')

    def test_excluding_required_eva_rejected(self):
        from repro import RequiredViolation
        db = Database(self.DDL, constraint_mode="off")
        db.execute('Insert customer(cust-no := 1)')
        db.execute('Insert order(order-no := 1,'
                   ' placed-by := customer with (cust-no = 1))')
        with pytest.raises(RequiredViolation):
            db.execute('Modify order(placed-by := exclude placed-by)'
                       ' Where order-no = 1')


class TestDescribeRoundTrip:
    """AST.describe() emits re-parseable DML with identical meaning."""

    QUERIES = [
        "From Student Retrieve Name, Name of Advisor",
        "Retrieve Title of Transitive(prerequisites) of Course"
        ' Where Title of Course = "Calculus I"',
        "From student, instructor Retrieve name of student,"
        " name of instructor Where birthdate of student <"
        " birthdate of instructor and advisor of student NEQ instructor"
        " and not instructor isa teaching-assistant",
        "From Department Retrieve name,"
        " AVG(Salary of Instructors-employed) of Department",
        'From person Retrieve name Where name like "J%" or'
        " soc-sec-no >= 100",
        "From instructor Retrieve name Where assigned-department neq"
        " some(major-department of advisees)",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_targets_and_where_reparse(self, text, small_university):
        query = parse_dml(text)
        rebuilt_targets = ", ".join(t.expression.describe()
                                    for t in query.targets)
        rebuilt = "From " + ", ".join(
            p.class_name for p in (query.perspectives
                                   or [])) if query.perspectives else ""
        rebuilt = (rebuilt + " Retrieve " + rebuilt_targets).strip()
        if query.where is not None:
            rebuilt += " Where " + query.where.describe()
        original = small_university.query(text).rows
        again = small_university.query(rebuilt).rows
        assert original == again


class TestSubroleSemantics:
    def test_single_valued_subrole_reads_scalar(self, small_university):
        # instructor-status is a single-valued subrole on STUDENT.
        rows = small_university.query(
            "From student Retrieve name, instructor-status").rows
        assert all(is_null(status) for _, status in rows)
        small_university.execute(
            'Insert teaching-assistant From student'
            ' Where name = "John Doe"'
            ' (employee-nbr := 1750, teaching-load := 2)')
        value = small_university.query(
            'From student Retrieve instructor-status'
            ' Where name = "John Doe"').scalar()
        assert value == "teaching-assistant"

    def test_subrole_in_where(self, small_university):
        small_university.execute(
            'Insert teaching-assistant From student'
            ' Where name = "John Doe"'
            ' (employee-nbr := 1750, teaching-load := 2)')
        rows = small_university.query(
            'From person Retrieve name'
            ' Where profession = "student"').rows
        assert {r[0] for r in rows} == {"John Doe", "Lone Wolf"}
