"""Storage substrate tests: disk, buffer pool, record files."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage import BufferPool, Disk, RecordFile, RecordFormat, RID


def make_file(pool_capacity=16, block_size=256):
    disk = Disk()
    pool = BufferPool(disk, pool_capacity)
    record_file = RecordFile(1, "test", pool, block_size)
    record_file.register_format(RecordFormat(1, "row", {"k": 6, "v": 20}))
    return disk, pool, record_file


class TestBufferPool:
    def test_miss_then_hit(self):
        disk = Disk()
        pool = BufferPool(disk, 4)
        pool.get(1, 0)
        assert pool.stats.physical_reads == 1
        pool.get(1, 0)
        assert pool.stats.logical_reads == 2
        assert pool.stats.physical_reads == 1

    def test_lru_eviction_writes_back_dirty(self):
        disk = Disk()
        pool = BufferPool(disk, 2)
        block = pool.get(1, 0)
        block.slots.append((1, {"x": 1}))
        pool.mark_dirty(1, 0)
        pool.get(1, 1)
        pool.get(1, 2)  # evicts block 0 (dirty) -> physical write
        assert pool.stats.physical_writes == 1
        # Re-reading block 0 must see the written data.
        fetched = pool.get(1, 0)
        assert fetched.slots == [(1, {"x": 1})]

    def test_lru_order_respects_access(self):
        disk = Disk()
        pool = BufferPool(disk, 2)
        pool.get(1, 0)
        pool.get(1, 1)
        pool.get(1, 0)      # touch 0: 1 is now the LRU victim
        pool.get(1, 2)
        assert pool.resident_blocks == 2
        pool.get(1, 0)      # still resident -> no extra physical read
        assert pool.stats.physical_reads == 3

    def test_invalidate_forces_cold_reads(self):
        disk = Disk()
        pool = BufferPool(disk, 8)
        pool.get(1, 0)
        pool.invalidate()
        pool.get(1, 0)
        assert pool.stats.physical_reads == 2

    def test_dirty_unresident_rejected(self):
        pool = BufferPool(Disk(), 2)
        with pytest.raises(StorageError):
            pool.mark_dirty(9, 9)

    def test_capacity_validation(self):
        with pytest.raises(StorageError):
            BufferPool(Disk(), 0)

    def test_stats_delta(self):
        pool = BufferPool(Disk(), 2)
        before = pool.stats.snapshot()
        pool.get(1, 0)
        delta = pool.stats.delta(before)
        assert (delta.logical_reads, delta.physical_reads) == (1, 1)


class TestRecordFile:
    def test_insert_read_roundtrip(self):
        _, _, record_file = make_file()
        rid = record_file.insert(1, {"k": 1, "v": "hello"})
        fmt, values = record_file.read(rid)
        assert fmt == 1 and values == {"k": 1, "v": "hello"}

    def test_blocking_factor(self):
        _, _, record_file = make_file(block_size=256)
        # width = 4 header + 26 = 30 -> 8 records per 256-byte block
        assert record_file.blocking_factor(1) == 8

    def test_records_fill_blocks(self):
        _, _, record_file = make_file(block_size=256)
        for i in range(20):
            record_file.insert(1, {"k": i, "v": str(i)})
        assert record_file.block_count == 3   # ceil(20 / 8)
        assert record_file.record_count == 20

    def test_update_in_place(self):
        _, _, record_file = make_file()
        rid = record_file.insert(1, {"k": 1, "v": "a"})
        record_file.update(rid, {"v": "b"})
        assert record_file.read(rid)[1]["v"] == "b"

    def test_update_unknown_field(self):
        _, _, record_file = make_file()
        rid = record_file.insert(1, {"k": 1, "v": "a"})
        with pytest.raises(StorageError):
            record_file.update(rid, {"ghost": 1})

    def test_delete_and_undelete_same_rid(self):
        _, _, record_file = make_file()
        rid = record_file.insert(1, {"k": 1, "v": "a"})
        values = record_file.delete(rid)
        assert not record_file.exists(rid)
        record_file.undelete(rid, 1, values)
        assert record_file.read(rid)[1]["v"] == "a"

    def test_undelete_occupied_slot_rejected(self):
        _, _, record_file = make_file()
        rid = record_file.insert(1, {"k": 1, "v": "a"})
        with pytest.raises(StorageError):
            record_file.undelete(rid, 1, {"k": 2, "v": "b"})

    def test_deleted_space_reused(self):
        _, _, record_file = make_file(block_size=256)
        rids = [record_file.insert(1, {"k": i, "v": ""}) for i in range(8)]
        record_file.delete(rids[0])
        rid = record_file.insert(1, {"k": 99, "v": ""})
        assert rid.block == 0  # went into the freed space

    def test_clustered_insert_lands_near_anchor(self):
        _, _, record_file = make_file(block_size=256)
        anchor = record_file.insert(1, {"k": 0, "v": "anchor"})
        # Fill block 0 completely, spill into block 1, then free a slot in
        # block 0: a clustered insert should return there, an ordinary
        # insert prefers the tail block.
        fillers = [record_file.insert(1, {"k": i + 1, "v": "filler"})
                   for i in range(10)]
        record_file.delete(fillers[0])
        plain = record_file.insert(1, {"k": 99, "v": "plain"})
        assert plain.block != anchor.block
        rid = record_file.insert(1, {"k": 100, "v": "x"}, near=anchor)
        assert rid.block == anchor.block

    def test_clustering_falls_back_when_block_full(self):
        _, _, record_file = make_file(block_size=256)
        anchor = record_file.insert(1, {"k": 0, "v": ""})
        for i in range(7):
            record_file.insert(1, {"k": i, "v": ""})
        rid = record_file.insert(1, {"k": 100, "v": ""}, near=anchor)
        assert rid.block != anchor.block

    def test_scan_by_format(self):
        _, _, record_file = make_file()
        record_file.register_format(RecordFormat(2, "other", {"z": 8}))
        record_file.insert(1, {"k": 1, "v": "a"})
        record_file.insert(2, {"z": 9})
        record_file.insert(1, {"k": 2, "v": "b"})
        only_rows = [values for _, _, values in record_file.scan(1)]
        assert [row["k"] for row in only_rows] == [1, 2]
        everything = list(record_file.scan())
        assert len(everything) == 3

    def test_read_after_eviction_durable(self):
        disk, pool, record_file = make_file(pool_capacity=1, block_size=256)
        rids = [record_file.insert(1, {"k": i, "v": str(i)})
                for i in range(30)]
        pool.flush()
        for i, rid in enumerate(rids):
            assert record_file.read(rid)[1]["k"] == i

    def test_oversized_format_rejected(self):
        _, _, record_file = make_file(block_size=256)
        with pytest.raises(StorageError):
            record_file.register_format(RecordFormat(9, "big", {"x": 500}))

    def test_missing_record(self):
        _, _, record_file = make_file()
        with pytest.raises(StorageError):
            record_file.read(RID(0, 0))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 9)),
                min_size=1, max_size=60))
def test_file_matches_dict_model(operations):
    """Property: a RecordFile behaves like a dict under insert / delete /
    update, regardless of block boundaries and buffer pressure."""
    _, pool, record_file = make_file(pool_capacity=2, block_size=128)
    model = {}
    rids = {}
    for op, key in operations:
        if op == 0:  # insert (overwrite model entry under fresh rid)
            if key in rids:
                continue
            rids[key] = record_file.insert(1, {"k": key, "v": str(key)})
            model[key] = str(key)
        elif op == 1 and key in rids:  # delete
            record_file.delete(rids.pop(key))
            model.pop(key)
        elif op == 2 and key in rids:  # update
            record_file.update(rids[key], {"v": f"u{key}"})
            model[key] = f"u{key}"
    seen = {values["k"]: values["v"]
            for _, _, values in record_file.scan(1)}
    assert seen == model
