"""Query-builder tests (the WQF stand-in): generated DML is well-formed
and equivalent to hand-written statements."""

import pytest

from repro.errors import SimError
from repro.interfaces.builder import (
    InsertBuilder,
    ModifyBuilder,
    QueryBuilder,
    attr,
    avg,
    count,
    path,
    render_value,
    transitive,
)
from repro.types.dates import SimDate


class TestRendering:
    def test_literals(self):
        assert render_value(5) == "5"
        assert render_value(True) == "true"
        assert render_value('say "hi"') == '"say ""hi"""'
        assert render_value(SimDate(1988, 6, 1)) == '"1988-06-01"'

    def test_unrenderable(self):
        with pytest.raises(SimError):
            render_value(object())

    def test_condition_combinators(self):
        condition = (attr("a") == 1) & ~(attr("b") > 2) | attr("c").like("x%")
        assert "and" in condition.text and "or" in condition.text
        assert "not" in condition.text

    def test_term_arithmetic(self):
        term = 1.1 * attr("salary") + 5
        assert term.text == "((1.1 * salary) + 5)"


class TestQueryEquivalence:
    def test_simple_query(self, small_university):
        built = (QueryBuilder("student")
                 .retrieve("name", path("name", "advisor"))
                 .order_by("name"))
        hand = ("From student Retrieve name, name of advisor"
                " Order By name")
        assert built.run(small_university).rows == \
            small_university.query(hand).rows

    def test_where_and_aggregates(self, small_university):
        built = (QueryBuilder("department")
                 .retrieve("name", avg(path("salary",
                                            "instructors-employed"))
                           .of("department")))
        hand = ("From department Retrieve name,"
                " avg(salary of instructors-employed) of department")
        assert built.run(small_university).rows == \
            small_university.query(hand).rows

    def test_transitive_and_count(self, small_university):
        built = (QueryBuilder("course")
                 .retrieve(count(transitive("prerequisites"),
                                 distinct=True))
                 .where(attr("title") == "Quantum Chromodynamics"))
        assert built.run(small_university).scalar() == 2

    def test_distinct_and_structure_modes(self, small_university):
        distinct = (QueryBuilder("course").retrieve("credits").distinct()
                    .run(small_university))
        assert len(distinct) == len(set(distinct.rows))
        structured = (QueryBuilder("student")
                      .retrieve("name", path("title", "courses-enrolled"))
                      .structure().run(small_university))
        assert structured.structured

    def test_quantified_comparison(self, small_university):
        built = (QueryBuilder("instructor")
                 .retrieve("name")
                 .where(attr("assigned-department")
                        .neq_some(path("major-department", "advisees"))))
        result = built.run(small_university)
        assert result.rows == []   # John majors in Joe's department

    def test_multi_perspective(self, small_university):
        built = (QueryBuilder("student", "instructor")
                 .retrieve(path("name", "student"),
                           path("name", "instructor"))
                 .where(path("advisor", "student") == attr("instructor")))
        assert built.run(small_university).rows == \
            [("John Doe", "Joe Bloke")]

    def test_retrieve_required(self):
        with pytest.raises(SimError):
            QueryBuilder("student").dml()


class TestUpdateBuilders:
    def test_insert(self, empty_university):
        count_affected = (InsertBuilder("person")
                          .set("name", "Built")
                          .set("soc-sec-no", 77)
                          .run(empty_university))
        assert count_affected == 1
        assert empty_university.query(
            'From person Retrieve name Where soc-sec-no = 77'
        ).scalar() == "Built"

    def test_insert_with_reference_and_extension(self, small_university):
        (InsertBuilder("student")
         .set("name", "Novice")
         .set("soc-sec-no", 12345)
         .set_ref("advisor", "instructor", attr("name") == "Jane Roe")
         .run(small_university))
        assert small_university.query(
            'From student Retrieve name of advisor Where name = "Novice"'
        ).scalar() == "Jane Roe"
        (InsertBuilder("instructor")
         .extending("person", attr("name") == "Novice")
         .set("employee-nbr", 1790)
         .run(small_university))
        rows = small_university.query(
            'From person Retrieve profession Where name = "Novice"').rows
        assert {r[0] for r in rows} == {"student", "instructor"}

    def test_modify_arithmetic(self, small_university):
        (ModifyBuilder("instructor")
         .set("salary", 2 * attr("salary"))
         .where(attr("name") == "Joe Bloke")
         .run(small_university))
        from decimal import Decimal
        assert small_university.query(
            'From instructor Retrieve salary Where name = "Joe Bloke"'
        ).scalar() == Decimal("100000.00")

    def test_modify_include_exclude(self, small_university):
        (ModifyBuilder("student")
         .include("courses-enrolled", "course", attr("title") == "Calculus I")
         .where(attr("name") == "John Doe")
         .run(small_university))
        (ModifyBuilder("student")
         .exclude("courses-enrolled", attr("title") == "Algebra I")
         .where(attr("name") == "John Doe")
         .run(small_university))
        rows = small_university.query(
            'From student Retrieve title of courses-enrolled'
            ' Where name = "John Doe"').rows
        assert rows == [("Calculus I",)]

    def test_modify_requires_assignment(self):
        with pytest.raises(SimError):
            ModifyBuilder("student").dml()
