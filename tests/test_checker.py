"""Semantic consistency checker tests: a clean bill of health on intact
databases, and detection of each corruption class when the physical state
is damaged behind the Mapper's back."""

import pytest

from repro import Database
from repro.workloads import UNIVERSITY_DDL
from repro.workloads.university import build_university


@pytest.fixture()
def db():
    return Database(UNIVERSITY_DDL, constraint_mode="off")


def problems_of(report, category):
    return [p for p in report.problems if p.startswith(f"[{category}]")]


class TestCleanDatabases:
    def test_empty_database_is_consistent(self, db):
        report = db.check()
        assert report.ok
        assert report.checked["records"] == 0

    def test_populated_university_is_consistent(self):
        database = build_university()
        report = database.check()
        assert report.ok, report.problems[:5]
        # the sweep actually covered ground
        assert report.checked["records"] > 100
        assert report.checked["eva_instances"] > 100
        assert report.checked["hierarchy_edges"] > 0
        assert report.checked["blocks"] > 0
        assert "consistent" in report.summary()

    def test_consistent_after_updates_and_recovery(self):
        database = build_university(departments=2, instructors=3,
                                    students=6, courses=5)
        database.execute('Insert student(name := "New",'
                         ' soc-sec-no := 900000001)')
        database.execute('Delete course Where course-no = 105')
        database.simulate_crash()
        assert database.check().ok

    def test_report_is_truthy_iff_clean(self, db):
        report = db.check()
        assert bool(report) is True
        report.add("test", "synthetic problem")
        assert bool(report) is False
        assert "synthetic problem" in report.summary()


class TestCorruptionDetection:
    """Each test vandalizes physical state through raw file/disk
    operations (bypassing the Mapper, as a crashed or buggy layer would)
    and asserts the right check category fires."""

    def test_dangling_eva_reference(self, db):
        db.execute('Insert person(name := "A", soc-sec-no := 1)')
        db.execute('Insert person(name := "B", soc-sec-no := 2,'
                   ' spouse := person with (soc-sec-no = 1))')
        store = db.store
        info = store._eva_info[("person", "spouse")]
        holder = store._class_file["person"]
        fmt = store._class_format["person"]
        # point one stored foreign key at a surrogate that has no record
        from repro.types.tvl import is_null
        rid = next(r for r, _, rec in holder.scan(fmt)
                   if not is_null(rec[info.fk_field]))
        holder.update(rid, {info.fk_field: 999999})
        report = db.check(constraints=False)
        assert not report.ok
        assert problems_of(report, "eva") or problems_of(report, "index")

    def test_hierarchy_hole(self, db):
        db.execute('Insert student(name := "S", soc-sec-no := 1)')
        store = db.store
        person_file = store._class_file["person"]
        person_fmt = store._class_format["person"]
        rid, _, _ = next(person_file.scan(person_fmt))
        person_file.delete(rid)        # base record gone, role remains
        report = db.check(constraints=False)
        assert not report.ok
        assert problems_of(report, "hierarchy")

    def test_unique_violation_on_disk(self, db):
        db.execute('Insert person(name := "A", soc-sec-no := 1)')
        db.execute('Insert person(name := "B", soc-sec-no := 2)')
        store = db.store
        person_file = store._class_file["person"]
        person_fmt = store._class_format["person"]
        rids = [rid for rid, _, _ in person_file.scan(person_fmt)]
        person_file.update(rids[1], {"soc-sec-no": 1})
        report = db.check()
        assert problems_of(report, "constraint")

    def test_required_null_on_disk(self, db):
        from repro.types.tvl import NULL
        db.execute('Insert course(course-no := 1, title := "T",'
                   ' credits := 3)')
        store = db.store
        course_file = store._class_file["course"]
        course_fmt = store._class_format["course"]
        rid, _, _ = next(course_file.scan(course_fmt))
        course_file.update(rid, {"title": NULL})
        report = db.check()
        assert problems_of(report, "constraint")
        # constraint checking can be switched off independently
        assert not problems_of(db.check(constraints=False), "constraint")

    def test_stale_index_entry(self, db):
        db.execute('Insert person(name := "A", soc-sec-no := 1)')
        store = db.store
        from repro.storage.records import RID
        store._surrogate_index["person"].insert(424242, RID(7, 7))
        report = db.check(constraints=False)
        assert problems_of(report, "index")

    def test_free_space_header_drift(self, db):
        db.execute('Insert person(name := "A", soc-sec-no := 1)')
        store = db.store
        store.pool.flush()
        person_file = store._class_file["person"]
        block = store.disk.read(person_file.file_id, 0)
        block.used += 17
        store.disk.write(person_file.file_id, 0, block)
        store.pool.invalidate()
        report = db.check(constraints=False)
        assert problems_of(report, "free-space")

    def test_instance_count_drift(self, db):
        db.execute('Insert department(dept-nbr := 100, name := "Math")')
        db.execute('Insert student(name := "S", soc-sec-no := 1,'
                   ' major-department := department with'
                   ' (dept-nbr = 100))')
        store = db.store
        info = next(i for i in store._eva_info.values()
                    if i.instance_count > 0)
        info.instance_count += 5
        report = db.check(constraints=False)
        assert problems_of(report, "eva")

    def test_torn_committed_block_caught_after_cold_cache(self):
        database = build_university(departments=2, instructors=3,
                                    students=6, courses=5)
        database.store.pool.flush()
        injector = database.install_faults(seed=3)
        injector.torn_write(1, keep=0.3)
        database.execute('Insert person(name := "Shear",'
                         ' soc-sec-no := 900000001)')
        database.cold_cache()
        report = database.check(constraints=False)
        assert not report.ok


class TestCheckerDiscipline:
    def test_checker_reads_bypass_and_preserve_caches(self):
        database = build_university(departments=2, instructors=3,
                                    students=6, courses=5)
        database.query("From student Retrieve name")   # warm the caches
        cache = database.store.read_cache
        epoch_before = cache.epoch
        hits_before = database.perf.record_cache_hits
        misses_before = database.perf.record_cache_misses
        database.check()
        assert cache.enabled                  # restored after the sweep
        # the sweep produced no cache traffic at all
        assert database.perf.record_cache_hits == hits_before
        assert database.perf.record_cache_misses == misses_before
        assert cache.epoch > epoch_before     # entries were dropped

    def test_check_mutates_nothing(self):
        database = build_university(departments=2, instructors=3,
                                    students=6, courses=5)
        database.store.pool.flush()
        before = database.store.disk.fingerprint()
        database.check()
        database.store.pool.flush()
        assert database.store.disk.fingerprint() == before
