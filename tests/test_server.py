"""The multi-client socket server: session-per-connection, admission
control with load shedding, statement timeouts, fault tolerance on
client disconnect, and graceful shutdown."""

import socket
import threading
import time

import pytest

from repro import Database
from repro.engine.sessions import Session
from repro.errors import ServerOverloaded
from repro.interfaces.server import ServerError, SimClient
from repro.workloads import UNIVERSITY_DDL


@pytest.fixture()
def db():
    database = Database(UNIVERSITY_DDL, constraint_mode="off")
    database.execute('Insert course(course-no := 101, title := "Algebra",'
                     ' credits := 3)')
    database.execute('Insert department(dept-nbr := 100, name := "Physics")')
    return database


@pytest.fixture()
def server(db):
    srv = db.serve()
    yield srv
    srv.stop()


def connect(server, **kwargs):
    host, port = server.address
    return SimClient(host, port, **kwargs)


class TestProtocol:
    def test_query_and_update_roundtrip(self, db, server):
        with connect(server) as client:
            assert client.ping()
            result = client.query("From course Retrieve title, credits")
            assert result.rows == [("Algebra", 3)]
            assert result.to_dicts() == [{"title": "Algebra", "credits": 3}]
            assert client.execute('Modify course(credits := 5)'
                                  ' Where title = "Algebra"') == 1
            client.commit()
        assert db.query('From course Retrieve credits'
                        ' Where title = "Algebra"').scalar() == 5

    def test_abort_discards_update(self, db, server):
        client = connect(server)
        client.execute('Modify course(credits := 9) Where title = "Algebra"')
        client.abort()
        client.close()
        assert db.query('From course Retrieve credits'
                        ' Where title = "Algebra"').scalar() == 3

    def test_null_and_nonprimitive_values_serialize(self, db, server):
        db.execute('Insert person(name := "Jo", soc-sec-no := 1,'
                   ' birthdate := "1980-02-01")')
        with connect(server) as client:
            row = client.query('From person Retrieve name, birthdate, spouse'
                               ' Where soc-sec-no = 1').rows[0]
        assert row[0] == "Jo"
        assert isinstance(row[1], str) and "1980" in row[1]
        assert row[2] is None  # NULL crosses the wire as JSON null

    def test_server_errors_are_relayed_with_type(self, server):
        with connect(server) as client:
            with pytest.raises(ServerError) as excinfo:
                client.query("From nowhere Retrieve nothing")
            assert excinfo.value.remote_type
            # The connection survives the failed statement.
            assert client.ping()

    def test_malformed_request_line(self, server):
        host, port = server.address
        sock = socket.create_connection((host, port), timeout=5.0)
        try:
            sock.sendall(b"this is not json\n")
            reply = sock.makefile("rb").readline()
            assert b'"ok": false' in reply
        finally:
            sock.close()


class TestConcurrency:
    def test_concurrent_clients_each_get_a_session(self, db, server):
        db.execute('Insert course(course-no := 102, title := "Sets",'
                   ' credits := 1)')
        errors = []

        def worker(i):
            try:
                with connect(server) as client:
                    for _ in range(5):
                        rows = client.query("From course Retrieve title").rows
                        assert len(rows) == 2
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=20.0)
        assert not any(thread.is_alive() for thread in threads)
        assert errors == []
        assert server.statistics()["connections_served"] == 4

    def test_disconnect_aborts_and_releases_locks(self, db, server):
        client = connect(server)
        client.execute('Modify course(credits := 9) Where title = "Algebra"')
        # Drop the connection without commit: the server must abort the
        # session and free its exclusive lock.
        client._sock.shutdown(socket.SHUT_RDWR)
        client._sock.close()
        # A blocking local writer rides out the server-side abort: once
        # the dead session's lock is released, the statement proceeds.
        local = Session(db, lock_timeout=10.0)
        local.execute('Modify course(credits := 4) Where title = "Algebra"')
        local.commit()
        assert db.query('From course Retrieve credits'
                        ' Where title = "Algebra"').scalar() == 4


class TestAdmissionControl:
    def test_overload_sheds_with_typed_error(self, db):
        server = db.serve(max_sessions=1, queue_depth=0)
        holder = Session(db)  # holds course exclusively, outside the server
        holder.execute('Modify course(credits := 9) Where title = "Algebra"')
        try:
            blocked = connect(server)
            shed = connect(server)
            # The first client's statement occupies the only slot while
            # it waits for the class lock.
            result = {}

            def run_blocked():
                try:
                    blocked.execute('Modify course(credits := 1)'
                                    ' Where title = "Algebra"', timeout=2.0)
                    result["outcome"] = "ran"
                except (ServerError, ServerOverloaded) as exc:
                    result["outcome"] = exc

            background = threading.Thread(target=run_blocked)
            background.start()
            time.sleep(0.3)  # let it enter the slot and start waiting
            with pytest.raises(ServerOverloaded):
                shed.execute("From course Retrieve title")
            holder.abort()  # free the lock; the queued statement finishes
            background.join(timeout=10.0)
            assert not background.is_alive()
            assert result["outcome"] == "ran"
            blocked.commit()
            assert server.statistics()["shed"] == 1
            blocked.close()
            shed.close()
        finally:
            holder.abort()
            server.stop()

    def test_statement_timeout_bounds_lock_waits(self, db):
        server = db.serve(statement_timeout=0.3)
        holder = Session(db)
        holder.execute('Modify course(credits := 9) Where title = "Algebra"')
        try:
            client = connect(server)
            started = time.monotonic()
            with pytest.raises(ServerError) as excinfo:
                client.execute('Modify course(credits := 1)'
                               ' Where title = "Algebra"')
            assert excinfo.value.remote_type == "LockTimeout"
            assert time.monotonic() - started < 5.0
            client.close()
        finally:
            holder.abort()
            server.stop()


class TestShutdown:
    def test_graceful_stop_aborts_open_transactions(self, db):
        server = db.serve()
        client = connect(server)
        client.execute('Modify course(credits := 9) Where title = "Algebra"')
        server.stop()
        # The uncommitted update is gone and its lock released.
        assert db.query('From course Retrieve credits'
                        ' Where title = "Algebra"').scalar() == 3
        local = Session(db, lock_timeout=1.0)
        local.execute('Modify course(credits := 2) Where title = "Algebra"')
        local.commit()

    def test_stop_drains_in_flight_statement(self, db):
        server = db.serve()
        client = connect(server)
        done = {}

        def slow_statement():
            done["result"] = client.query("From course Retrieve title").rows

        thread = threading.Thread(target=slow_statement)
        thread.start()
        server.stop()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        client.close()
