"""Interface tests: IQF sessions and the DMSII (network-model) import."""

import pytest

from repro.errors import SimError
from repro.interfaces import (
    IQFSession,
    NetworkDatabase,
    NetworkRecordType,
    NetworkSet,
    import_network_database,
    run_script,
)


class TestIQF:
    def test_query_and_row_count(self, small_university):
        transcript = run_script(small_university,
                                "From course Retrieve title, credits;\n")
        assert "Algebra I" in transcript
        assert "(3 rows)" in transcript

    def test_update_reports_count(self, small_university):
        transcript = run_script(
            small_university,
            "Modify course(credits := 1) Where credits >= 3;\n")
        assert "3 entities affected" in transcript

    def test_error_reported_not_raised(self, small_university):
        transcript = run_script(small_university,
                                "From ghost Retrieve name;\n")
        assert "error:" in transcript

    def test_dot_commands(self, small_university):
        transcript = run_script(small_university, ".classes\n.stats\n")
        assert "person" in transcript
        assert "base_classes" in transcript

    def test_explain_command(self, small_university):
        transcript = run_script(
            small_university,
            ".explain From student Retrieve name Where soc-sec-no = 1\n")
        assert "strategies considered" in transcript

    def test_multiline_statement(self, small_university):
        transcript = run_script(small_university,
                                "From course\nRetrieve title\n"
                                "Where credits = 3;\n")
        assert "Algebra I" in transcript

    def test_quit(self, small_university):
        session_output = run_script(small_university,
                                    ".quit\nFrom course Retrieve title;\n")
        assert "Algebra I" not in session_output


def build_network():
    net = NetworkDatabase("inventory")
    net.add_record_type(NetworkRecordType(
        "warehouse", {"wh-id": "integer", "city": "string[20]"},
        key_field="wh-id"))
    net.add_record_type(NetworkRecordType(
        "item", {"item-id": "integer", "descr": "string[30]",
                 "wh": "integer"}, key_field="item-id"))
    net.add_record_type(NetworkRecordType(
        "bin", {"bin-id": "integer", "capacity": "integer"},
        key_field="bin-id"))
    net.add_set(NetworkSet("wh-bins", "warehouse", "bin"))
    w0 = net.store("warehouse", {"wh-id": 1, "city": "Irvine"})
    w1 = net.store("warehouse", {"wh-id": 2, "city": "Detroit"})
    net.store("item", {"item-id": 10, "descr": "widget", "wh": 1})
    net.store("item", {"item-id": 11, "descr": "sprocket", "wh": 2})
    net.store("item", {"item-id": 12, "descr": "gear", "wh": 2})
    b0 = net.store("bin", {"bin-id": 100, "capacity": 50})
    b1 = net.store("bin", {"bin-id": 101, "capacity": 70})
    net.connect("wh-bins", w0, b0)
    net.connect("wh-bins", w0, b1)
    return net


class TestDmsiiImport:
    def test_record_types_become_base_classes(self):
        db = import_network_database(build_network())
        assert {c.name for c in db.schema.base_classes()} == {
            "warehouse", "item", "bin"}

    def test_foreign_key_hint_becomes_eva(self):
        db = import_network_database(
            build_network(), foreign_keys={("item", "wh"): "warehouse"})
        rows = db.query("From item Retrieve descr, city of wh"
                        " Order By descr").rows
        assert rows == [("gear", "Detroit"), ("sprocket", "Detroit"),
                        ("widget", "Irvine")]

    def test_fk_inverse_queryable(self):
        db = import_network_database(
            build_network(), foreign_keys={("item", "wh"): "warehouse"})
        rows = db.query("""
            From warehouse Retrieve city, count(wh-of) of warehouse""").rows
        assert ("Detroit", 2) in rows

    def test_network_set_becomes_eva(self):
        db = import_network_database(build_network())
        rows = db.query("From warehouse Retrieve city,"
                        " count(wh-bins-members) of warehouse").rows
        assert ("Irvine", 2) in rows and ("Detroit", 0) in rows

    def test_key_fields_are_unique(self):
        db = import_network_database(build_network())
        attr = db.schema.get_class("warehouse").attribute("wh-id")
        assert attr.options.unique

    def test_dangling_foreign_key_rejected(self):
        net = build_network()
        net.store("item", {"item-id": 13, "descr": "bad", "wh": 99})
        with pytest.raises(SimError):
            import_network_database(net,
                                    foreign_keys={("item", "wh"): "warehouse"})

    def test_unknown_field_in_store(self):
        net = build_network()
        with pytest.raises(SimError):
            net.store("item", {"ghost": 1})

    def test_queries_run_on_imported_data(self):
        db = import_network_database(
            build_network(), foreign_keys={("item", "wh"): "warehouse"})
        value = db.query("""
            From warehouse Retrieve city
            Where count(wh-bins-members) of warehouse >= 2""").scalar()
        assert value == "Irvine"
