"""Unit and property tests for the type system and 3-valued logic."""

from decimal import Decimal

import pytest
from hypothesis import given, strategies as st

from repro.errors import TypeDefinitionError, TypeMismatchError
from repro.types import (
    NULL,
    UNKNOWN,
    BooleanType,
    DateType,
    IntegerType,
    NumberType,
    RealType,
    SimDate,
    SimTime,
    StringType,
    SubroleType,
    SymbolicType,
    TimeType,
    TypeRegistry,
    is_null,
    tvl_and,
    tvl_not,
    tvl_or,
)


class TestIntegerType:
    def test_plain_integer_accepts_any_int(self):
        t = IntegerType()
        assert t.validate(42) == 42
        assert t.validate(-7) == -7

    def test_string_coercion(self):
        assert IntegerType().validate(" 19 ") == 19

    def test_float_with_integral_value(self):
        assert IntegerType().validate(3.0) == 3

    def test_float_with_fraction_rejected(self):
        with pytest.raises(TypeMismatchError):
            IntegerType().validate(3.5)

    def test_bool_is_not_integer(self):
        with pytest.raises(TypeMismatchError):
            IntegerType().validate(True)

    def test_range_union(self):
        t = IntegerType([(1001, 39999), (60001, 99999)])
        assert t.validate(1001) == 1001
        assert t.validate(99999) == 99999
        with pytest.raises(TypeMismatchError):
            t.validate(40000)
        with pytest.raises(TypeMismatchError):
            t.validate(1000)

    def test_empty_range_rejected(self):
        with pytest.raises(TypeDefinitionError):
            IntegerType([(10, 5)])

    def test_null_passes(self):
        assert IntegerType([(1, 2)]).validate(NULL) is NULL

    def test_ddl_rendering(self):
        assert IntegerType([(1, 9)]).ddl() == "integer (1..9)"
        assert IntegerType().ddl() == "integer"

    @given(st.integers(-10**9, 10**9))
    def test_roundtrip_any_int(self, value):
        assert IntegerType().validate(value) == value


class TestNumberType:
    def test_quantizes_to_scale(self):
        t = NumberType(9, 2)
        assert t.validate("10.005") == Decimal("10.01")
        assert t.validate(1) == Decimal("1.00")

    def test_precision_bound(self):
        t = NumberType(5, 2)
        assert t.validate("999.99") == Decimal("999.99")
        with pytest.raises(TypeMismatchError):
            t.validate("1000.00")

    def test_invalid_definition(self):
        with pytest.raises(TypeDefinitionError):
            NumberType(0, 0)
        with pytest.raises(TypeDefinitionError):
            NumberType(3, 5)

    def test_render(self):
        assert NumberType(9, 2).render(Decimal("5.5")) == "5.50"
        assert NumberType(9, 2).render(NULL) == "?"

    @given(st.decimals(min_value=-999, max_value=999, places=2,
                       allow_nan=False, allow_infinity=False))
    def test_two_place_decimals_roundtrip(self, value):
        assert NumberType(9, 2).validate(value) == value


class TestStringType:
    def test_length_enforced(self):
        t = StringType(5)
        assert t.validate("abcde") == "abcde"
        with pytest.raises(TypeMismatchError):
            t.validate("abcdef")

    def test_unbounded(self):
        assert StringType().validate("x" * 1000)

    def test_non_string_rejected(self):
        with pytest.raises(TypeMismatchError):
            StringType().validate(5)


class TestSymbolicType:
    def test_case_insensitive_canonical(self):
        t = SymbolicType(["BS", "MBA", "MS", "PHD"])
        assert t.validate("phd") == "PHD"
        assert t.validate("MBA") == "MBA"

    def test_unknown_value(self):
        with pytest.raises(TypeMismatchError):
            SymbolicType(["BS"]).validate("PHD")

    def test_duplicates_rejected(self):
        with pytest.raises(TypeDefinitionError):
            SymbolicType(["a", "A"])

    def test_empty_rejected(self):
        with pytest.raises(TypeDefinitionError):
            SymbolicType([])


class TestDateTime:
    def test_parse_iso_and_us(self):
        assert SimDate.parse("1988-06-01") == SimDate(1988, 6, 1)
        assert SimDate.parse("06/01/1988") == SimDate(1988, 6, 1)

    def test_bad_date(self):
        with pytest.raises(TypeMismatchError):
            SimDate(1988, 2, 30)
        with pytest.raises(TypeMismatchError):
            SimDate.parse("yesterday")

    def test_ordering(self):
        assert SimDate(1988, 6, 1) < SimDate(1989, 1, 1)
        assert SimDate(1988, 6, 1) <= SimDate(1988, 6, 1)

    def test_ordinal_roundtrip(self):
        d = SimDate(1988, 6, 1)
        assert SimDate.from_ordinal(d.ordinal()) == d

    def test_add_days(self):
        assert SimDate(1988, 12, 31).add_days(1) == SimDate(1989, 1, 1)

    def test_days_until(self):
        assert SimDate(1988, 1, 1).days_until(SimDate(1988, 1, 31)) == 30

    def test_time_parse_and_order(self):
        assert SimTime.parse("09:30") == SimTime(9, 30)
        assert SimTime.parse("09:30:15") < SimTime(10, 0)

    def test_time_bounds(self):
        with pytest.raises(TypeMismatchError):
            SimTime(24, 0)

    def test_date_type_coercion(self):
        assert DateType().validate("1988-06-01") == SimDate(1988, 6, 1)
        assert TimeType().validate("12:00") == SimTime(12, 0)

    @given(st.integers(1, 3_000_000))
    def test_ordinal_roundtrip_property(self, ordinal):
        assert SimDate.from_ordinal(ordinal).ordinal() == ordinal


class TestBooleanReal:
    def test_boolean_words(self):
        t = BooleanType()
        assert t.validate("true") is True
        assert t.validate("NO") is False
        with pytest.raises(TypeMismatchError):
            t.validate("maybe")

    def test_real(self):
        assert RealType().validate("2.5") == 2.5
        assert RealType().validate(Decimal("1.5")) == 1.5
        with pytest.raises(TypeMismatchError):
            RealType().validate("abc")


class TestSubrole:
    def test_members(self):
        t = SubroleType(["student", "instructor"])
        assert t.validate("Student") == "student"
        with pytest.raises(TypeMismatchError):
            t.validate("janitor")


class TestRegistry:
    def test_define_and_lookup_normalized(self):
        registry = TypeRegistry()
        registry.define("Id-Number", IntegerType([(1, 9)]))
        assert registry.lookup("id_number").validate(5) == 5
        assert "ID-NUMBER" in registry

    def test_duplicate_definition(self):
        registry = TypeRegistry()
        registry.define("t", IntegerType())
        with pytest.raises(TypeDefinitionError):
            registry.define("T", IntegerType())

    def test_unknown_lookup(self):
        with pytest.raises(TypeDefinitionError):
            TypeRegistry().lookup("missing")


class TestThreeValuedLogic:
    def test_null_singleton(self):
        assert is_null(NULL)
        assert is_null(None)
        assert not is_null(0)
        assert not NULL  # falsy

    def test_kleene_and(self):
        assert tvl_and(True, True) is True
        assert tvl_and(True, UNKNOWN) is UNKNOWN
        assert tvl_and(False, UNKNOWN) is False
        assert tvl_and(UNKNOWN, UNKNOWN) is UNKNOWN

    def test_kleene_or(self):
        assert tvl_or(False, False) is False
        assert tvl_or(True, UNKNOWN) is True
        assert tvl_or(False, UNKNOWN) is UNKNOWN

    def test_kleene_not(self):
        assert tvl_not(UNKNOWN) is UNKNOWN
        assert tvl_not(True) is False

    TVL = [True, False, UNKNOWN]

    @given(st.sampled_from(TVL), st.sampled_from(TVL))
    def test_de_morgan(self, a, b):
        assert tvl_not(tvl_and(a, b)) is tvl_or(tvl_not(a), tvl_not(b))
        assert tvl_not(tvl_or(a, b)) is tvl_and(tvl_not(a), tvl_not(b))

    @given(st.sampled_from(TVL), st.sampled_from(TVL), st.sampled_from(TVL))
    def test_associativity(self, a, b, c):
        assert tvl_and(tvl_and(a, b), c) is tvl_and(a, tvl_and(b, c))
        assert tvl_or(tvl_or(a, b), c) is tvl_or(a, tvl_or(b, c))
