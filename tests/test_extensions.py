"""Tests for the paper's §6 "future developments" features: views,
derived attributes, and system-maintained EVA ordering."""

import pytest

from repro import Database, QualificationError, SchemaError, parse_ddl
from repro.types.tvl import is_null

DDL = """
Class Person (
  name: string[20] required;
  pay: integer;
  extra: integer;
  friends: person inverse is friend-of mv (ordered by name) );

Subclass Worker of Person (
  grade: integer );

Derive compensation on person as pay + extra;
Derive double-grade on worker as 2 * grade;

View rich of person where compensation > 100;
View everyone of person;
"""


@pytest.fixture()
def db():
    database = Database(DDL, constraint_mode="off")
    database.execute('Insert person(name := "Al", pay := 50, extra := 10)')
    database.execute('Insert person(name := "Bo", pay := 90, extra := 20)')
    database.execute('Insert worker(name := "Cy", pay := 200, extra := 1,'
                     ' grade := 4)')
    return database


class TestDerivedAttributes:
    def test_readable_like_a_dva(self, db):
        rows = db.query("From person Retrieve name, compensation"
                        " Order By name").rows
        assert rows == [("Al", 60), ("Bo", 110), ("Cy", 201)]

    def test_usable_in_where(self, db):
        rows = db.query("From person Retrieve name"
                        " Where compensation > 100").rows
        assert {r[0] for r in rows} == {"Bo", "Cy"}

    def test_inherited_by_subclasses(self, db):
        assert db.query("From worker Retrieve compensation").scalar() == 201

    def test_declared_on_subclass(self, db):
        assert db.query("From worker Retrieve double-grade").scalar() == 8

    def test_null_propagation(self, db):
        db.execute('Insert person(name := "Nil")')
        value = db.query('From person Retrieve compensation'
                         ' Where name = "Nil"').scalar()
        assert is_null(value)

    def test_through_eva_chain(self, db):
        db.execute('Modify person(friends := include person with'
                   ' (name = "Cy")) Where name = "Al"')
        rows = db.query('From person Retrieve compensation of friends'
                        ' Where name = "Al"').rows
        assert rows == [(201,)]

    def test_outer_join_still_applies(self, db):
        # A derived attribute through a target-only EVA chain must not
        # turn the chain into an inner join.
        rows = db.query("From person Retrieve name,"
                        " compensation of friends Order By name").rows
        names = [r[0] for r in rows]
        assert names == ["Al", "Bo", "Cy"]  # nobody dropped
        assert all(is_null(r[1]) for r in rows)

    def test_not_assignable(self, db):
        with pytest.raises(Exception):
            db.execute('Modify person(compensation := 5)'
                       ' Where name = "Al"')

    def test_shadowing_stored_attribute_rejected(self):
        with pytest.raises(SchemaError):
            parse_ddl("""
                Class C ( x: integer );
                Derive x on c as 1 + 1;
            """)

    def test_aggregate_inside_derived(self):
        db = Database("""
            Class Team ( team-name: string[10];
                         players: player inverse is plays-for mv );
            Class Player ( pname: string[10]; score: integer;
                           plays-for: team inverse is players );
            Derive total-score on team as sum(score of players);
        """, constraint_mode="off")
        db.execute('Insert team(team-name := "A")')
        db.execute('Insert player(pname := "p1", score := 3,'
                   ' plays-for := team with (team-name = "A"))')
        db.execute('Insert player(pname := "p2", score := 4,'
                   ' plays-for := team with (team-name = "A"))')
        assert db.query("From team Retrieve total-score").scalar() == 7


class TestViews:
    def test_view_as_perspective(self, db):
        rows = db.query("From rich Retrieve name Order By name").rows
        assert rows == [("Bo",), ("Cy",)]

    def test_view_name_usable_in_qualification(self, db):
        rows = db.query("From rich Retrieve name of rich, pay of rich"
                        " Order By name of rich").rows
        assert rows == [("Bo", 90), ("Cy", 200)]

    def test_view_predicate_conjoined_with_user_where(self, db):
        rows = db.query("From rich Retrieve name Where pay < 100").rows
        assert rows == [("Bo",)]

    def test_unfiltered_view(self, db):
        assert len(db.query("From everyone Retrieve name")) == 3

    def test_view_with_alias(self, db):
        rows = db.query("From rich r Retrieve name of r"
                        " Order By name of r").rows
        assert rows == [("Bo",), ("Cy",)]

    def test_view_sees_derived_attributes(self, db):
        rows = db.query("From rich Retrieve compensation"
                        " Order By compensation").rows
        assert rows == [(110,), (201,)]

    def test_view_is_read_only(self, db):
        with pytest.raises(Exception):
            db.execute('Delete rich Where name = "Bo"')

    def test_view_name_collision_rejected(self):
        with pytest.raises(SchemaError):
            parse_ddl("""
                Class C ( x: integer );
                View c of c;
            """)

    def test_unknown_view_class_rejected(self):
        with pytest.raises(SchemaError):
            parse_ddl("View v of ghost;")

    def test_statement_reexecution_stable(self, db):
        from repro import parse_dml
        query = parse_dml("From rich Retrieve name")
        first = db.execute(query).rows
        second = db.execute(query).rows
        assert first == second


class TestOrderedEvas:
    def test_targets_sorted_by_range_attribute(self, db):
        db.execute('Modify person(friends := person with (name neq "Bo"))'
                   ' Where name = "Bo"')
        rows = db.query('From person Retrieve name of friends'
                        ' Where name = "Bo"').rows
        assert rows == [("Al",), ("Cy",)]

    def test_nulls_first_in_ordering(self, db):
        db.execute('Insert person(name := "Zed")')
        # Make Zed's ordering attribute null by ordering on pay instead:
        db2 = Database("""
            Class Item ( label: string[10]; rank: integer;
                         parts: item inverse is part-of mv
                         (ordered by rank) );
        """, constraint_mode="off")
        db2.execute('Insert item(label := "root")')
        db2.execute('Insert item(label := "null-rank")')
        db2.execute('Insert item(label := "one", rank := 1)')
        db2.execute('Modify item(parts := item with (label neq "root"))'
                    ' Where label = "root"')
        rows = db2.query('From item Retrieve label of parts'
                         ' Where label = "root"').rows
        assert rows == [("null-rank",), ("one",)]

    def test_ordering_attribute_validated(self):
        with pytest.raises(SchemaError):
            parse_ddl("""
                Class C ( links: c inverse is link-of mv
                          (ordered by ghost) );
            """)

    def test_ordered_requires_mv(self):
        with pytest.raises(SchemaError):
            parse_ddl("Class C ( link: c (ordered by link) );")

    def test_ddl_roundtrip_keeps_ordering(self):
        schema = parse_ddl(DDL)
        reparsed = parse_ddl(schema.ddl())
        friends = reparsed.get_class("person").attribute("friends")
        assert friends.options.ordered_by == "name"
        assert reparsed.view("rich") is not None
        assert reparsed.find_derived("person", "compensation") is not None
