"""Materialized derived relations: serving, incremental maintenance,
transactional invalidation, crash-torture convergence, and persistence.

The manager (:mod:`repro.mapper.materialized`) subscribes to the store's
write-event hub; these tests pin the contract: a fresh materialization
serves traversals bit-identically to direct evaluation, every write
either applies its delta or marks the content stale, abort/crash always
invalidates, and the consistency checker never reads derived state.
"""

from __future__ import annotations

import pytest

from repro.engine.sessions import Session
from repro.errors import CatalogError, InjectedCrash
from repro.interfaces.iqf import run_script
from repro.workloads.university import build_university

ADVISEES_Q = "From instructor Retrieve name, count(advisees)"
ADVISOR_Q = "From student Retrieve name, name of advisor"
CLOSURE_Q = ("Retrieve title of Transitive(prerequisites) of course"
             " Where course-no of course = 101")


@pytest.fixture()
def db():
    database = build_university(seed=11)
    database.materialize("advising", "join", "instructor", ("advisees",))
    database.materialize("prereq-closure", "closure", "course",
                         ("prerequisites",))
    return database


def baseline(*queries):
    plain = build_university(seed=11)
    return [plain.query(text).rows for text in queries]


class TestServing:
    def test_join_rows_identical_and_hits(self, db):
        expect_fwd, expect_rev = baseline(ADVISEES_Q, ADVISOR_Q)
        before = db.perf.as_dict()["materialized_hits"]
        assert db.query(ADVISEES_Q).rows == expect_fwd
        assert db.query(ADVISOR_Q).rows == expect_rev  # inverse direction
        assert db.perf.as_dict()["materialized_hits"] > before

    def test_closure_rows_identical_and_hits(self, db):
        (expect,) = baseline(CLOSURE_Q)
        before = db.perf.as_dict()["materialized_hits"]
        assert db.query(CLOSURE_Q).rows == expect
        assert db.perf.as_dict()["materialized_hits"] > before

    def test_snapshot_reads_bypass_materializations(self, db):
        (expect,) = baseline(ADVISEES_Q)
        session = Session(db, mvcc=True)
        before = db.perf.as_dict()
        assert session.query(ADVISEES_Q).rows == expect
        after = db.perf.as_dict()
        assert after["materialized_hits"] == before["materialized_hits"]

    def test_explain_analyze_names_materialization(self, db):
        db.enable_tracing()
        report = db.execute(ADVISEES_Q).explain_analyze()
        assert "materialized_hits" in report


class TestMaintenance:
    def test_incremental_join_delta_stays_fresh(self, db):
        mat = db.store.materialized.get("advising")
        student = db.query("From student Retrieve name").rows[0][0]
        target = db.query("From instructor Retrieve name").rows[-1][0]
        db.execute(f'Modify student(advisor := instructor with'
                   f' (name = "{target}")) Where name = "{student}"')
        assert mat.fresh          # delta applied in place, no refresh
        assert mat.refreshes == 1
        plain = build_university(seed=11)
        plain.execute(f'Modify student(advisor := instructor with'
                      f' (name = "{target}")) Where name = "{student}"')
        assert db.query(ADVISEES_Q).rows == plain.query(ADVISEES_Q).rows
        assert db.query(ADVISOR_Q).rows == plain.query(ADVISOR_Q).rows

    def test_chain_write_stales_closure(self, db):
        mat = db.store.materialized.get("prereq-closure")
        assert mat.fresh
        db.execute('Modify course(prerequisites := include course with'
                   ' (course-no = 103)) Where course-no = 102')
        assert not mat.fresh
        # the next probe lazily refreshes and serves correct rows
        plain = build_university(seed=11)
        plain.execute('Modify course(prerequisites := include course with'
                      ' (course-no = 103)) Where course-no = 102')
        assert db.query(CLOSURE_Q).rows == plain.query(CLOSURE_Q).rows
        assert mat.fresh

    def test_abort_marks_stale_and_rows_converge(self, db):
        expect = db.query(ADVISEES_Q).rows
        mat = db.store.materialized.get("advising")
        student = db.query("From student Retrieve name").rows[0][0]
        target = db.query("From instructor Retrieve name").rows[-1][0]
        session = Session(db)
        session.execute(f'Modify student(advisor := instructor with'
                        f' (name = "{target}")) Where name = "{student}"')
        session.abort()
        assert not mat.fresh      # undo surgery invalidated the content
        assert db.query(ADVISEES_Q).rows == expect
        db.refresh_materialization("advising")
        assert db.query(ADVISEES_Q).rows == expect


class TestCrashTorture:
    def test_crash_between_commit_and_refresh_converges(self, db):
        """The machine dies after a committed base-table change while the
        join materialization's content still reflects it only in volatile
        memory: recovery must mark everything stale, rows must come from
        recovered physical state, and the checker must stay green."""
        student = db.query("From student Retrieve name").rows[0][0]
        target = db.query("From instructor Retrieve name").rows[-1][0]
        with db.transaction():
            db.execute(f'Modify student(advisor := instructor with'
                       f' (name = "{target}")) Where name = "{student}"')
        db.store.pool.flush()
        expect = db.query(ADVISEES_Q).rows
        db.simulate_crash()
        for mat in db.list_materializations():
            assert not mat.fresh
        assert db.query(ADVISEES_Q).rows == expect
        assert db.check().ok

    def test_injected_crash_mid_statement_converges(self, db):
        """The device dies while an in-flight transaction steals loser
        pages to disk: after reboot + recovery the materializations are
        stale, the rows agree with the pre-transaction state, and the
        checker is green."""
        db.store.pool.flush()
        expect_j = db.query(ADVISEES_Q).rows
        expect_c = db.query(CLOSURE_Q).rows
        student = db.query("From student Retrieve name").rows[0][0]
        target = db.query("From instructor Retrieve name").rows[-1][0]
        db.begin()
        db.execute(f'Modify student(advisor := instructor with'
                   f' (name = "{target}")) Where name = "{student}"')
        injector = db.install_faults(seed=41)
        injector.crash_after_writes(1)
        with pytest.raises(InjectedCrash):
            db.store.pool.flush()    # the machine dies on this steal
        db.simulate_crash()          # reboot + undo the loser
        for mat in db.list_materializations():
            assert not mat.fresh
        assert db.query(ADVISEES_Q).rows == expect_j
        assert db.query(CLOSURE_Q).rows == expect_c
        assert db.check().ok

    def test_repeated_crashes_keep_converging(self, db):
        expect = db.query(ADVISEES_Q).rows
        db.store.pool.flush()
        for _ in range(3):
            db.simulate_crash()
            assert db.query(ADVISEES_Q).rows == expect
            assert db.check().ok


class TestCatalog:
    def test_declare_validates(self, db):
        with pytest.raises(CatalogError):
            db.materialize("x", "join", "nosuch", ("advisees",))
        with pytest.raises(CatalogError):
            db.materialize("x", "join", "instructor", ("name",))  # not EVA
        with pytest.raises(CatalogError):
            db.materialize("x", "blend", "instructor", ("advisees",))
        with pytest.raises(CatalogError):   # duplicate name
            db.materialize("advising", "join", "student", ("advisor",))
        with pytest.raises(CatalogError):   # rel already materialized
            db.materialize("again", "join", "instructor", ("advisees",))

    def test_drop_restores_direct_evaluation(self, db):
        (expect,) = baseline(ADVISEES_Q)
        db.drop_materialization("advising")
        assert len(db.list_materializations()) == 1
        before = db.perf.as_dict()["materialized_hits"]
        assert db.query(ADVISEES_Q).rows == expect
        assert db.perf.as_dict()["materialized_hits"] == before

    def test_checker_never_reads_materializations(self, db):
        # Poison the stored content; a checker that consulted it would
        # either report phantom problems or miss real ones.
        mat = db.store.materialized.get("advising")
        mat.forward = {999999: (888888,)}
        mat.reverse = {888888: (999999,)}
        assert db.check().ok
        db.refresh_materialization("advising")

    def test_persistence_roundtrip(self, db, tmp_path):
        expect = db.query(ADVISEES_Q).rows
        path = str(tmp_path / "university.simdb")
        db.save(path)
        from repro.database import Database
        reopened = Database.open(path)
        mats = reopened.list_materializations()
        assert sorted(m.name for m in mats) == ["advising", "prereq-closure"]
        assert all(m.fresh for m in mats)   # rebuilt eagerly after recovery
        assert reopened.query(ADVISEES_Q).rows == expect
        assert reopened.rewrite is True


class TestIQFCommands:
    def test_lifecycle_via_dot_commands(self):
        database = build_university(seed=11)
        transcript = run_script(
            database,
            ".materialize advising join instructor advisees\n"
            ".materialize prereq closure course prerequisites\n"
            ".materialized\n"
            ".refresh advising\n"
            ".dematerialize prereq\n"
            ".materialized\n")
        assert "advising: advisees of instructor [join, fresh" in transcript
        assert "transitive(prerequisites) of course" in transcript
        assert "dropped prereq" in transcript
        assert len(database.list_materializations()) == 1

    def test_errors_are_reported_not_raised(self):
        database = build_university(seed=11)
        transcript = run_script(
            database,
            ".materialize x join nosuch advisees\n"
            ".refresh nope\n"
            ".dematerialize nope\n"
            ".materialize\n")
        assert transcript.count("error:") == 3
        assert "usage: .materialize" in transcript
