"""Transaction manager tests: undo, savepoints, commit/abort."""

import pytest

from repro.errors import TransactionError
from repro.storage import TransactionManager


class TestLifecycle:
    def test_begin_commit(self):
        manager = TransactionManager()
        manager.begin()
        assert manager.in_transaction()
        manager.commit()
        assert not manager.in_transaction()
        assert manager.commits == 1

    def test_nested_begin_rejected(self):
        manager = TransactionManager()
        manager.begin()
        with pytest.raises(TransactionError):
            manager.begin()

    def test_commit_without_begin(self):
        with pytest.raises(TransactionError):
            TransactionManager().commit()

    def test_abort_runs_undos_in_reverse(self):
        manager = TransactionManager()
        manager.begin()
        log = []
        manager.record_undo(lambda: log.append("first"))
        manager.record_undo(lambda: log.append("second"))
        manager.abort()
        assert log == ["second", "first"]
        assert manager.aborts == 1

    def test_commit_discards_undos(self):
        manager = TransactionManager()
        manager.begin()
        log = []
        manager.record_undo(lambda: log.append("x"))
        manager.commit()
        assert log == []

    def test_transaction_ids_are_per_manager(self):
        """Regression: ids used to come from a class-global counter, so
        independent databases interleaved their transaction ids (and a
        recovered manager resumed from an unrelated high-water mark)."""
        first = TransactionManager()
        second = TransactionManager()
        assert first.begin().transaction_id == 1
        assert second.begin().transaction_id == 1
        first.commit()
        second.commit()
        assert first.begin().transaction_id == 2

    def test_start_after_seeds_the_counter(self):
        manager = TransactionManager(start_after=17)
        assert manager.begin().transaction_id == 18

    def test_independent_databases_do_not_share_ids(self):
        from repro import Database
        from repro.workloads import UNIVERSITY_DDL
        db_a = Database(UNIVERSITY_DDL, constraint_mode="off")
        db_b = Database(UNIVERSITY_DDL, constraint_mode="off")
        txn_a = db_a.store.transactions.begin()
        txn_b = db_b.store.transactions.begin()
        assert txn_a.transaction_id == 1
        assert txn_b.transaction_id == 1
        db_a.store.transactions.commit()
        db_b.store.transactions.commit()

    def test_recovered_manager_resumes_past_logged_ids(self):
        from repro import Database
        from repro.workloads import UNIVERSITY_DDL
        db = Database(UNIVERSITY_DDL, constraint_mode="off")
        with db.transaction():
            db.execute('Insert person(name := "A", soc-sec-no := 1)')
        db.simulate_crash()
        # the rebuilt manager must not reissue an id the durable log used
        fresh = db.store.transactions.begin()
        assert fresh.transaction_id >= 2
        db.store.transactions.commit()

    def test_undo_outside_transaction_is_noop(self):
        manager = TransactionManager()
        manager.record_undo(lambda: (_ for _ in ()).throw(AssertionError))
        # nothing raised, nothing recorded
        assert not manager.in_transaction()


class TestSavepoints:
    def test_partial_rollback(self):
        manager = TransactionManager()
        manager.begin()
        log = []
        manager.record_undo(lambda: log.append("a"))
        mark = manager.current.savepoint()
        manager.record_undo(lambda: log.append("b"))
        manager.record_undo(lambda: log.append("c"))
        manager.current.rollback_to(mark)
        assert log == ["c", "b"]
        manager.abort()
        assert log == ["c", "b", "a"]

    def test_invalid_savepoint(self):
        manager = TransactionManager()
        manager.begin()
        with pytest.raises(TransactionError):
            manager.current.rollback_to(5)

    def test_savepoint_on_closed_transaction(self):
        manager = TransactionManager()
        manager.begin()
        transaction = manager.current
        manager.commit()
        with pytest.raises(TransactionError):
            transaction.savepoint()


class TestDatabaseIntegration:
    def test_abort_restores_entities(self, empty_university):
        db = empty_university
        db.execute('Insert person(name := "Keep", soc-sec-no := 1)')
        db.begin()
        db.execute('Insert person(name := "Drop", soc-sec-no := 2)')
        assert len(db.query("From person Retrieve name")) == 2
        db.abort()
        rows = db.query("From person Retrieve name").rows
        assert rows == [("Keep",)]

    def test_abort_restores_attribute_values(self, empty_university):
        db = empty_university
        db.execute('Insert instructor(name := "I", soc-sec-no := 1,'
                   ' employee-nbr := 1001, salary := 100)')
        db.begin()
        db.execute('Modify instructor(salary := 200) Where employee-nbr = 1001')
        db.abort()
        value = db.query(
            'From instructor Retrieve salary Where employee-nbr = 1001'
        ).scalar()
        assert int(value) == 100

    def test_abort_restores_eva_instances(self, empty_university):
        db = empty_university
        db.execute('Insert person(name := "A", soc-sec-no := 1)')
        db.execute('Insert person(name := "B", soc-sec-no := 2)')
        db.begin()
        db.execute('Modify person(spouse := person with (name = "B"))'
                   ' Where name = "A"')
        db.abort()
        from repro.types.tvl import is_null
        rows = db.query('From person Retrieve name, name of spouse').rows
        assert [name for name, _ in rows] == ["A", "B"]
        assert all(is_null(spouse_name) for _, spouse_name in rows)

    def test_abort_restores_deleted_entities(self, small_university):
        db = small_university
        db.begin()
        db.execute('Delete person Where name = "John Doe"')
        assert len(db.query('From person Retrieve name Where name = "John Doe"')) == 0
        db.abort()
        result = db.query(
            'From student Retrieve name, name of advisor, '
            'count(courses-enrolled) of student Where name = "John Doe"')
        assert result.rows == [("John Doe", "Joe Bloke", 1)]

    def test_transaction_context_manager(self, empty_university):
        db = empty_university
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute('Insert person(name := "X", soc-sec-no := 3)')
                raise RuntimeError("boom")
        assert len(db.query("From person Retrieve name")) == 0
        with db.transaction():
            db.execute('Insert person(name := "Y", soc-sec-no := 4)')
        assert len(db.query("From person Retrieve name")) == 1
