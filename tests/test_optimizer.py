"""Optimizer tests (paper §5.1): query graph, strategy enumeration, cost
model ordering, plan-vs-naive equivalence, semantics preservation."""

import pytest

from repro import Database, parse_dml
from repro.optimizer import CostModel, build_query_graph
from repro.optimizer.plan import Plan
from repro.workloads import UNIVERSITY_DDL, build_university


@pytest.fixture(scope="module")
def db():
    return build_university(departments=4, instructors=10, students=60,
                            courses=20, seed=11)


class TestQueryGraph:
    def test_nodes_are_lucs(self, db):
        query = parse_dml(
            "From student Retrieve name, title of courses-enrolled")
        tree = db.qualifier.resolve_retrieve(query)
        graph = build_query_graph(tree)
        names = [node.luc_name for node in graph.nodes]
        assert names == ["student", "course"]
        assert graph.edges[0].eva_name == "courses-enrolled"

    def test_mvdva_node(self, db):
        query = parse_dml("From person Retrieve profession")
        tree = db.qualifier.resolve_retrieve(query)
        graph = build_query_graph(tree)
        kinds = {node.kind for node in graph.nodes}
        assert kinds == {"class", "mvdva"}


class TestStrategyEnumeration:
    def test_index_strategy_found_for_unique_equality(self, db):
        query = parse_dml(
            "From student Retrieve name Where soc-sec-no = 0")
        tree = db.qualifier.resolve_retrieve(query)
        plans = db.optimizer.enumerate_strategies(query, tree)
        kinds = {plan.root_access["student"].kind for plan in plans}
        assert kinds == {"scan", "index"}

    def test_no_index_strategy_for_unindexed_attribute(self, db):
        query = parse_dml('From person Retrieve name Where name = "X"')
        tree = db.qualifier.resolve_retrieve(query)
        plans = db.optimizer.enumerate_strategies(query, tree)
        assert {plan.root_access["person"].kind for plan in plans} == \
            {"scan"}

    def test_index_wins_at_scale(self, db):
        # 60 students: an index probe beats the extent scan.
        query = parse_dml(
            "From student Retrieve name Where soc-sec-no = 0")
        tree = db.qualifier.resolve_retrieve(query)
        plan = db.optimizer.choose_plan(query, tree)
        assert plan.root_access["student"].kind == "index"

    def test_or_disjunction_prevents_index(self, db):
        query = parse_dml('From student Retrieve name '
                          'Where soc-sec-no = 1 or soc-sec-no = 2')
        tree = db.qualifier.resolve_retrieve(query)
        plans = db.optimizer.enumerate_strategies(query, tree)
        assert {p.root_access["student"].kind for p in plans} == {"scan"}

    def test_multi_perspective_strategies_are_products(self, db):
        query = parse_dml(
            "From student, instructor Retrieve name of student,"
            " name of instructor Where soc-sec-no of student = 1 and"
            " employee-nbr of instructor = 1001")
        tree = db.qualifier.resolve_retrieve(query)
        plans = db.optimizer.enumerate_strategies(query, tree)
        # {scan,index} x {scan,index} access choices x 2 loop orders
        assert len(plans) == 8
        preserving = [p for p in plans if p.root_order is None]
        assert len(preserving) == 4


class TestPlanEquivalence:
    QUERIES = [
        "From student Retrieve name Where soc-sec-no = {ssn}",
        "From student Retrieve name, title of courses-enrolled "
        "Where soc-sec-no = {ssn}",
        "From student Retrieve name, name of advisor "
        "Where soc-sec-no = {ssn}",
    ]

    def test_index_plan_returns_scan_plan_results(self, db):
        ssn = db.query("From student Retrieve soc-sec-no").rows[10][0]
        for template in self.QUERIES:
            text = template.format(ssn=ssn)
            query = parse_dml(text)
            tree = db.qualifier.resolve_retrieve(query)
            with_plan = db.executor.run(query, tree,
                                        db.optimizer.choose_plan(query, tree))
            without = db.executor.run(query, tree, None)
            assert with_plan.rows == without.rows

    def test_ordering_preserved_by_index_plan(self, db):
        # Non-unique value index lookup must return entities in surrogate
        # order, the perspective-implied ordering.
        rows_scan = db.query("From student Retrieve soc-sec-no").rows
        assert rows_scan == sorted(rows_scan)


class TestCostModel:
    def test_scan_cost_tracks_blocks(self, db):
        cost_model = CostModel(db.store)
        assert cost_model.scan_cost("student") == \
            db.store.class_block_count("student")

    def test_clustered_first_instance_is_free(self, db):
        # §5.1: clustering -> 0; pointers -> 1 block access.
        from repro.mapper import EvaMapping, PhysicalDesign, MapperStore
        from repro import parse_ddl
        from repro.workloads import UNIVERSITY_DDL
        schema = parse_ddl(UNIVERSITY_DDL)
        advisor = schema.get_class("student").attribute("advisor")
        for mapping, expected_first in [(EvaMapping.CLUSTERED, 0.0),
                                        (EvaMapping.POINTER, 1.0)]:
            design = PhysicalDesign(schema)
            design.override_eva("student", "advisor", mapping)
            store = MapperStore(schema, design.finalize())
            first, _ = CostModel(store).relationship_costs(advisor)
            assert first == expected_first

    def test_sort_cost_monotone(self, db):
        cost_model = CostModel(db.store)
        assert cost_model.sort_cost(1) == 0.0
        assert cost_model.sort_cost(1000) > cost_model.sort_cost(100) > 0

    def test_explain_report(self, db):
        report = db.explain(
            "From student Retrieve name Where soc-sec-no = 0")
        assert "query graph" in report
        assert "strategies considered" in report
        assert "->" in report


class TestEstimateVsMeasure:
    def test_cheaper_estimate_is_cheaper_measured(self, db):
        """E6 core claim: for the selective query, the chosen (index) plan
        does measurably less physical I/O than the naive scan."""
        ssn = db.query("From student Retrieve soc-sec-no").rows[5][0]
        text = f"From student Retrieve name, name of advisor Where soc-sec-no = {ssn}"
        query = parse_dml(text)
        tree = db.qualifier.resolve_retrieve(query)
        plans = sorted(db.optimizer.enumerate_strategies(query, tree),
                       key=lambda p: p.estimated_cost)
        best, worst = plans[0], plans[-1]
        assert best.estimated_cost < worst.estimated_cost

        def measure(plan):
            db.cold_cache()
            db.store.reset_io_stats()
            db.executor.run(query, tree, plan)
            return db.store.io_stats().physical_reads

        assert measure(best) <= measure(worst)


class TestRootReordering:
    """§5.1's semantics-preserving transformation: loop orders other than
    the FROM order are considered and charged an output re-sort."""

    def _query(self, db):
        emp = db.query("From instructor Retrieve employee-nbr").rows[0][0]
        return ("From student, instructor Retrieve name of student,"
                " name of instructor"
                f" Where employee-nbr of instructor = {emp} and"
                " birthdate of student < birthdate of instructor")

    def test_reordered_strategies_enumerated(self, db):
        query = parse_dml(self._query(db))
        tree = db.qualifier.resolve_retrieve(query)
        plans = db.optimizer.enumerate_strategies(query, tree)
        assert any(plan.root_order is not None for plan in plans)
        assert any(plan.root_order is None for plan in plans)

    def test_all_orders_return_identical_results(self, db):
        text = self._query(db)
        reference = None
        query = parse_dml(text)
        tree = db.qualifier.resolve_retrieve(query)
        for plan in db.optimizer.enumerate_strategies(query, tree):
            fresh = parse_dml(text)
            fresh_tree = db.qualifier.resolve_retrieve(fresh)
            rows = db.executor.run(fresh, fresh_tree, plan).rows
            if reference is None:
                reference = rows
            assert rows == reference

    def test_reordered_plan_explained(self, db):
        report = db.explain(self._query(db))
        assert "reordered" in report

    def test_single_perspective_never_reordered(self, db):
        query = parse_dml("From student Retrieve name")
        tree = db.qualifier.resolve_retrieve(query)
        plans = db.optimizer.enumerate_strategies(query, tree)
        assert all(plan.root_order is None for plan in plans)

    def test_structured_output_under_reordering(self, db):
        text = self._query(db).replace("Retrieve", "Retrieve Structure", 1)
        query = parse_dml(text)
        tree = db.qualifier.resolve_retrieve(query)
        plans = db.optimizer.enumerate_strategies(query, tree)
        reordered = next(p for p in plans if p.root_order is not None)
        result = db.executor.run(query, tree, reordered)
        # student records (the first perspective) still group the output
        assert result.structured[0].format_name == "student"
