"""Output-form tests (paper §4.5, experiment E11): fully tabular vs fully
structured, format counts, level numbers, host-interface shape."""

import pytest

from repro.types.tvl import is_null


class TestStructuredOutput:
    def test_format_count_matches_type13_variables(self, small_university):
        # Query with root (TYPE1) + courses-enrolled (TYPE3) + teachers
        # (TYPE3) = 3 formats carrying target items.
        result = small_university.query("""
            Retrieve Structure Name of Student,
                Title of Courses-Enrolled of Student,
                Name of Teachers of Courses-Enrolled of Student""")
        formats_used = {record.format_name for record in result.structured}
        assert formats_used == {"student", "courses-enrolled", "teachers"}
        assert len(result.formats) == 3

    def test_levels_follow_nesting(self, small_university):
        result = small_university.query("""
            Retrieve Structure Name of Student,
                Title of Courses-Enrolled of Student
            Where Soc-Sec-No of Student = 456887766""")
        levels = [(r.format_name, r.level) for r in result.structured]
        assert levels[0] == ("student", 0)
        assert ("courses-enrolled", 1) in levels

    def test_parent_record_not_repeated_per_child(self, small_university):
        small_university.execute(
            'Modify student(courses-enrolled := include course with'
            ' (title = "Calculus I")) Where name = "John Doe"')
        result = small_university.query("""
            Retrieve Structure Name of Student,
                Title of Courses-Enrolled of Student
            Where Soc-Sec-No of Student = 456887766""")
        student_records = [r for r in result.structured
                           if r.format_name == "student"]
        course_records = [r for r in result.structured
                          if r.format_name == "courses-enrolled"]
        assert len(student_records) == 1
        assert len(course_records) == 2

    def test_transitive_levels(self, small_university):
        result = small_university.query("""
            Retrieve Structure Title of Transitive(prerequisites) of Course
            Where Title of Course = "Quantum Chromodynamics" """)
        closure = [r for r in result.structured
                   if r.format_name == "prerequisites"]
        levels = [r.level for r in closure]
        assert levels == [1, 2]  # Calculus I at level 1, Algebra I at 2

    def test_tabular_mode_has_no_structured(self, small_university):
        result = small_university.query("From student Retrieve name")
        with pytest.raises(ValueError):
            _ = result.structured


class TestHostInterface:
    def test_cursor_fetch_sequence(self, small_university):
        from repro.interfaces import HostSession
        session = HostSession(small_university)
        cursor = session.open_cursor(
            "Retrieve Name of Student, Title of Courses-Enrolled of Student"
            " Where Soc-Sec-No of Student = 456887766")
        first = cursor.fetch()
        assert first.format_name == "student"
        second = cursor.fetch()
        assert second.format_name == "courses-enrolled"
        assert cursor.fetch() is None

    def test_cursor_iteration_and_rewind(self, small_university):
        from repro.interfaces import HostSession
        session = HostSession(small_university)
        cursor = session.open_cursor("From course Retrieve title")
        titles = [r.values["title"] for r in cursor]
        assert len(titles) == 3
        cursor.rewind()
        assert cursor.fetch() is not None

    def test_closed_cursor_rejects_fetch(self, small_university):
        from repro.interfaces import HostSession
        from repro.errors import SimError
        session = HostSession(small_university)
        cursor = session.open_cursor("From course Retrieve title")
        cursor.close()
        with pytest.raises(SimError):
            cursor.fetch()

    def test_call_rejects_retrieve(self, small_university):
        from repro.interfaces import HostSession
        from repro.errors import SimError
        session = HostSession(small_university)
        with pytest.raises(SimError):
            session.call("From course Retrieve title")
        assert session.call('Insert department(dept-nbr := 300,'
                            ' name := "Chem")') == 1


class TestPretty:
    def test_pretty_table_shape(self, small_university):
        text = small_university.query(
            "From course Retrieve title, credits").pretty()
        lines = text.splitlines()
        assert lines[0].split() == ["title", "credits"]
        assert len(lines) == 2 + 3

    def test_pretty_truncation(self, small_university):
        text = small_university.query(
            "From course Retrieve title").pretty(max_rows=1)
        assert "more rows" in text
