"""VERIFY constraint enforcement (paper §3.3): trigger detection, immediate
and deferred checking, rollback on violation."""

import pytest

from repro import ConstraintViolation, Database
from repro.workloads import UNIVERSITY_DDL


@pytest.fixture()
def db():
    """UNIVERSITY with constraints ON (immediate mode)."""
    database = Database(UNIVERSITY_DDL, constraint_mode="immediate")
    database.execute('Insert course(course-no := 1, title := "Heavy",'
                     ' credits := 12)')
    database.execute('Insert course(course-no := 2, title := "Light",'
                     ' credits := 2)')
    return database


class TestV1CreditSum:
    def test_insert_with_enough_credits_passes(self, db):
        db.execute('Insert student(soc-sec-no := 1, courses-enrolled :='
                   ' course with (title = "Heavy"))')

    def test_insert_with_too_few_credits_fails(self, db):
        with pytest.raises(ConstraintViolation) as info:
            db.execute('Insert student(soc-sec-no := 1, courses-enrolled :='
                       ' course with (title = "Light"))')
        assert "too few credits" in str(info.value)
        # statement rolled back entirely
        assert len(db.query("From person Retrieve soc-sec-no")) == 0

    def test_dropping_course_below_threshold_fails(self, db):
        db.execute('Insert student(soc-sec-no := 1, courses-enrolled :='
                   ' course with (title = "Heavy"))')
        with pytest.raises(ConstraintViolation):
            db.execute('Modify student(courses-enrolled := exclude'
                       ' courses-enrolled with (title = "Heavy"))'
                       ' Where soc-sec-no = 1')
        # unchanged
        assert db.query('From student Retrieve count(courses-enrolled) of'
                        ' student').scalar() == 1

    def test_modifying_course_credits_triggers_enrolled_students(self, db):
        # Changing CREDITS can violate v1 for students of that course —
        # trigger detection must catch the dependency through the EVA.
        db.execute('Insert student(soc-sec-no := 1, courses-enrolled :='
                   ' course with (title = "Heavy"))')
        with pytest.raises(ConstraintViolation):
            db.execute('Modify course(credits := 2)'
                       ' Where title = "Heavy"')

    def test_unrelated_update_not_checked(self, db):
        db.execute('Insert student(soc-sec-no := 1, courses-enrolled :='
                   ' course with (title = "Heavy"))')
        before = db.constraints.checks_run
        db.execute('Modify person(name := "Renamed") Where soc-sec-no = 1')
        # name is not a term of v1 or v2: no checks run.
        assert db.constraints.checks_run == before


class TestV2SalaryBonus:
    def test_cap_enforced(self, db):
        with pytest.raises(ConstraintViolation) as info:
            db.execute('Insert instructor(soc-sec-no := 1,'
                       ' employee-nbr := 1001, salary := 90000,'
                       ' bonus := 20000)')
        assert "too much money" in str(info.value)

    def test_null_bonus_passes_like_sql_check(self, db):
        # salary + NULL bonus is unknown; unknown passes (SQL CHECK rule).
        db.execute('Insert instructor(soc-sec-no := 1, employee-nbr := 1001,'
                   ' salary := 90000)')

    def test_raise_over_cap_rejected(self, db):
        db.execute('Insert instructor(soc-sec-no := 1, employee-nbr := 1001,'
                   ' salary := 60000, bonus := 0)')
        with pytest.raises(ConstraintViolation):
            db.execute('Modify instructor(salary := 2 * salary)'
                       ' Where employee-nbr = 1001')


class TestDeferredMode:
    def test_violations_checked_at_commit(self):
        db = Database(UNIVERSITY_DDL, constraint_mode="deferred")
        db.execute('Insert course(course-no := 1, title := "Heavy",'
                   ' credits := 12)')
        db.begin()
        # Temporarily violating insert is fine inside the transaction...
        db.execute('Insert student(soc-sec-no := 1)')
        # ...as long as it is repaired before commit.
        db.execute('Modify student(courses-enrolled := include course with'
                   ' (title = "Heavy")) Where soc-sec-no = 1')
        db.commit()
        assert len(db.query("From student Retrieve soc-sec-no")) == 1

    def test_unrepaired_violation_fails_commit(self):
        db = Database(UNIVERSITY_DDL, constraint_mode="deferred")
        db.begin()
        db.execute('Insert student(soc-sec-no := 1)')
        with pytest.raises(ConstraintViolation):
            db.commit()
        db.abort()
        assert len(db.query("From student Retrieve soc-sec-no")) == 0

    def test_transaction_context_aborts_on_violation(self):
        db = Database(UNIVERSITY_DDL, constraint_mode="deferred")
        with pytest.raises(ConstraintViolation):
            with db.transaction():
                db.execute('Insert student(soc-sec-no := 1)')
        assert len(db.query("From student Retrieve soc-sec-no")) == 0


class TestTriggerAnalysis:
    def test_terms_collected(self, db):
        compiled = db.constraints.compiled
        v1 = next(c for c in compiled if c.constraint.name == "v1")
        assert ("class", "student") in v1.terms
        assert ("attr", "student", "courses-enrolled") in v1.terms
        assert ("attr", "course", "students-enrolled") in v1.terms
        assert ("attr", "course", "credits") in v1.terms

    def test_skip_counter_grows_for_untriggered(self, db):
        before = db.constraints.checks_skipped
        db.execute('Insert department(dept-nbr := 100, name := "D")')
        assert db.constraints.checks_skipped > before

    def test_off_mode_never_checks(self):
        db = Database(UNIVERSITY_DDL, constraint_mode="off")
        db.execute('Insert student(soc-sec-no := 1)')   # v1 would fail
        assert db.constraints.checks_run == 0
