"""Unit tests for the write-ahead log itself (the recovery integration is
covered in test_recovery.py)."""

import pytest

from repro.storage.buffer import Block, Disk
from repro.storage.wal import (
    CLR,
    COMMIT,
    UPDATE,
    WriteAheadLog,
    undo_losers,
)


class TestLogBasics:
    def test_lsns_monotone(self):
        wal = WriteAheadLog()
        first = wal.append(1, UPDATE, (1, 0, 0, None, (1, {"x": 1})))
        second = wal.append(1, COMMIT)
        assert second == first + 1

    def test_force_makes_prefix_durable(self):
        wal = WriteAheadLog()
        wal.log_update(1, 1, 0, 0, None, (1, {"x": 1}), compensation=False)
        assert wal.durable_records() == []
        wal.force()
        assert len(wal.durable_records()) == 1

    def test_force_counts_only_nonempty(self):
        wal = WriteAheadLog()
        wal.force()
        assert wal.forces == 0
        wal.append(1, COMMIT)
        wal.force()
        wal.force()
        assert wal.forces == 1

    def test_crash_drops_volatile_tail(self):
        wal = WriteAheadLog()
        wal.log_update(1, 1, 0, 0, None, (1, {"x": 1}), compensation=False)
        wal.force()
        wal.log_update(1, 1, 0, 1, None, (1, {"x": 2}), compensation=False)
        wal.crash()
        assert len(wal) == 1

    def test_commit_forces(self):
        wal = WriteAheadLog()
        wal.log_update(7, 1, 0, 0, None, (1, {"x": 1}), compensation=False)
        wal.log_commit(7)
        assert 7 in wal.committed_transactions()

    def test_snapshot_isolated_from_caller(self):
        wal = WriteAheadLog()
        values = {"x": 1}
        wal.log_update(1, 1, 0, 0, None, (1, values), compensation=False)
        values["x"] = 99
        record = wal._records[0]
        assert record.payload[4][1]["x"] == 1


class TestLoserSelection:
    def fill(self, wal):
        wal.log_update(1, 1, 0, 0, None, (1, {"who": "w"}),
                       compensation=False)   # winner
        wal.log_commit(1)
        wal.log_update(2, 1, 0, 1, None, (1, {"who": "l"}),
                       compensation=False)   # loser
        wal.log_update(2, 1, 0, 2, None, (1, {"who": "l2"}),
                       compensation=True)    # CLR: never undone
        wal.log_update(None, 1, 0, 3, None, (1, {"who": "auto"}),
                       compensation=False)   # autocommit: never undone
        wal.force()

    def test_losers_exclude_winners_clrs_and_autocommit(self):
        wal = WriteAheadLog()
        self.fill(wal)
        losers = wal.loser_updates()
        assert [record.payload[2] for record in losers] == [1]

    def test_losers_newest_first(self):
        wal = WriteAheadLog()
        wal.log_update(5, 1, 0, 0, None, (1, {}), compensation=False)
        wal.log_update(5, 1, 0, 1, None, (1, {}), compensation=False)
        wal.force()
        losers = wal.loser_updates()
        assert [r.payload[2] for r in losers] == [1, 0]


class TestUndo:
    def test_undo_restores_before_images_on_disk(self):
        disk = Disk()
        block = Block()
        block.slots = [(1, {"x": "after"})]
        disk.write(9, 0, block)

        wal = WriteAheadLog()
        wal.log_update(3, 9, 0, 0, (1, {"x": "before"}), (1, {"x": "after"}),
                       compensation=False)
        wal.force()
        restored = undo_losers(wal, disk)
        assert restored == 1
        assert disk.read(9, 0).slots[0] == (1, {"x": "before"})

    def test_undo_of_insert_clears_slot(self):
        disk = Disk()
        block = Block()
        block.slots = [(1, {"x": 1})]
        disk.write(9, 0, block)
        wal = WriteAheadLog()
        wal.log_update(3, 9, 0, 0, None, (1, {"x": 1}), compensation=False)
        wal.force()
        undo_losers(wal, disk)
        assert disk.read(9, 0).slots[0] is None

    def test_truncate(self):
        wal = WriteAheadLog()
        wal.log_commit(1)
        wal.truncate()
        assert len(wal) == 0
        assert wal.committed_transactions() == set()

    def test_undo_restores_used_width_from_formats(self):
        """Regression: _fix_used must restore the occupied *width* from
        the file's format registry, not the slot count (which left the
        free-space map lying until rebuild_metadata ran)."""
        from repro.storage.records import RecordFormat

        fmt = RecordFormat(1, "r", {"who": 20})
        disk = Disk()
        block = Block()
        # two committed records + one in-flight, all format 1
        block.slots = [(1, {"who": "w1"}), (1, {"who": "w2"}),
                       (1, {"who": "loser"})]
        block.used = 3 * fmt.width
        disk.write(9, 0, block)

        wal = WriteAheadLog()
        wal.log_update(1, 9, 0, 0, None, (1, {"who": "w1"}),
                       compensation=False)
        wal.log_update(1, 9, 0, 1, None, (1, {"who": "w2"}),
                       compensation=False)
        wal.log_commit(1)
        wal.log_update(2, 9, 0, 2, None, (1, {"who": "loser"}),
                       compensation=False)
        wal.force()

        undo_losers(wal, disk, {9: {1: fmt}})
        recovered = disk.read(9, 0)
        assert recovered.slots[2] is None
        assert recovered.used == 2 * fmt.width   # width, not count (2)

    def test_undo_without_formats_falls_back_to_slot_count(self):
        disk = Disk()
        block = Block()
        block.slots = [(1, {"x": 1}), (1, {"x": 2})]
        disk.write(9, 0, block)
        wal = WriteAheadLog()
        wal.log_update(3, 9, 0, 1, None, (1, {"x": 2}), compensation=False)
        wal.force()
        undo_losers(wal, disk)
        assert disk.read(9, 0).used == 1   # best effort without widths

    def test_checkpoint_resets_log_keeps_lsns_monotone(self):
        wal = WriteAheadLog()
        wal.log_update(1, 9, 0, 0, None, (1, {"x": 1}), compensation=False)
        wal.log_commit(1)
        watermark = wal.checkpoint()
        assert len(wal) == 0
        assert wal.checkpoints == 1
        assert wal.last_checkpoint_lsn == watermark
        next_lsn = wal.append(2, UPDATE, (9, 0, 0, None, (1, {"x": 2})))
        assert next_lsn > watermark
