"""Retrieve execution semantics (paper §4.5): nested loops, TYPE 3 outer
joins, TYPE 2 existentials, aggregates, quantifiers, transitive closure,
ordering and null handling."""

import pytest
from decimal import Decimal

from repro.types.tvl import NULL, is_null


class TestOuterJoinSemantics:
    def test_type3_prints_null_for_empty_domain(self, small_university):
        rows = small_university.query(
            "From Student Retrieve Name, Name of Advisor").rows
        assert ("John Doe", "Joe Bloke") in rows
        lone = [r for r in rows if r[0] == "Lone Wolf"]
        assert lone and is_null(lone[0][1])

    def test_names_of_non_students_not_printed(self, small_university):
        rows = small_university.query(
            "From Student Retrieve Name").rows
        names = [r[0] for r in rows]
        assert "Joe Bloke" not in names  # instructor only

    def test_type1_empty_domain_prunes_row(self, small_university):
        # courses-enrolled used in both lists -> TYPE 1 -> inner join.
        rows = small_university.query("""
            From student Retrieve name, title of courses-enrolled
            Where credits of courses-enrolled >= 1""").rows
        names = {r[0] for r in rows}
        assert names == {"John Doe"}      # Lone Wolf has no courses

    def test_cascading_dummy_through_chain(self, small_university):
        # Lone Wolf has no advisor; advisor's department name must be null,
        # not an error.
        rows = small_university.query("""
            From student Retrieve name,
                 name of assigned-department of advisor""").rows
        lone = [r for r in rows if r[0] == "Lone Wolf"]
        assert lone and is_null(lone[0][1])


class TestExistentialSemantics:
    def test_type2_requires_witness(self, small_university):
        rows = small_university.query("""
            Retrieve name of student
            Where title of courses-enrolled = "Algebra I" """).rows
        assert rows == [("John Doe",)]

    def test_type2_no_witness_even_for_negation(self, small_university):
        # Existential semantics: a student with no courses has no witness,
        # so even 'neq' cannot select them (paper program semantics).
        rows = small_university.query("""
            Retrieve name of student
            Where title of courses-enrolled neq "Algebra I" """).rows
        assert rows == []

    def test_correlated_type2_conjunction(self, small_university):
        # Both conjuncts bind to the same courses-enrolled variable: there
        # must be ONE course satisfying both.
        rows = small_university.query("""
            Retrieve name of student
            Where title of courses-enrolled = "Algebra I" and
                  credits of courses-enrolled = 3""").rows
        assert rows == [("John Doe",)]
        rows = small_university.query("""
            Retrieve name of student
            Where title of courses-enrolled = "Algebra I" and
                  credits of courses-enrolled = 4""").rows
        assert rows == []


class TestMultiPerspective:
    def test_cross_product(self, small_university):
        rows = small_university.query(
            "From student, instructor Retrieve name of student, "
            "name of instructor").rows
        assert len(rows) == 2 * 2

    def test_value_based_join(self, small_university):
        rows = small_university.query("""
            From student, instructor
            Retrieve name of student, name of instructor
            Where birthdate of student < birthdate of instructor""").rows
        assert ("John Doe", "Joe Bloke") in rows
        assert ("John Doe", "Jane Roe") in rows
        assert all(r[0] != "Lone Wolf" for r in rows)  # null birthdate

    def test_entity_comparison(self, small_university):
        rows = small_university.query("""
            From student, instructor
            Retrieve name of student, name of instructor
            Where advisor of student = instructor""").rows
        assert rows == [("John Doe", "Joe Bloke")]


class TestAggregates:
    def test_universal_aggregate(self, small_university):
        value = small_university.query(
            "From instructor Retrieve Table Distinct avg(salary of instructor)"
        ).scalar()
        assert value == Decimal("55000.00")

    def test_correlated_aggregate(self, small_university):
        rows = small_university.query("""
            From student Retrieve name,
                 sum(credits of courses-enrolled) of student""").rows
        assert ("John Doe", 3) in rows
        assert ("Lone Wolf", 0) in rows       # SUM of empty is 0

    def test_count_of_empty_is_zero(self, small_university):
        rows = small_university.query("""
            From student Retrieve name,
                 count(courses-enrolled) of student""").rows
        assert ("Lone Wolf", 0) in rows

    def test_min_max(self, small_university):
        row = small_university.query(
            "From course Retrieve Table Distinct min(credits of course), "
            "max(credits of course)").rows[0]
        assert row == (3, 5)

    def test_aggregate_in_where(self, small_university):
        rows = small_university.query("""
            From course Retrieve title
            Where count(prerequisites) of course >= 1""").rows
        assert sorted(r[0] for r in rows) == [
            "Calculus I", "Quantum Chromodynamics"]

    def test_nested_attribute_aggregate(self, small_university):
        rows = small_university.query("""
            From Department Retrieve name,
                 AVG(Salary of Instructors-employed) of Department""").rows
        assert ("Physics", Decimal("50000.00")) in rows
        assert ("Math", Decimal("60000.00")) in rows


class TestQuantifiers:
    def test_some(self, small_university):
        rows = small_university.query("""
            From instructor Retrieve name
            Where 3 = some(credits of courses-taught)""").rows
        assert rows == []  # nobody teaches anything yet

    def test_no_over_empty_is_true(self, small_university):
        rows = small_university.query("""
            From student Retrieve name
            Where "Biology" = no(title of courses-enrolled)""").rows
        assert {r[0] for r in rows} == {"John Doe", "Lone Wolf"}

    def test_all(self, small_university):
        rows = small_university.query("""
            From student Retrieve name
            Where 3 = all(credits of courses-enrolled)""").rows
        # John's only course has 3 credits; vacuous truth for Lone Wolf.
        assert {r[0] for r in rows} == {"John Doe", "Lone Wolf"}


class TestTransitiveClosure:
    def test_prerequisite_chain(self, small_university):
        rows = small_university.query("""
            Retrieve Title of Transitive(prerequisites) of Course
            Where Title of Course = "Quantum Chromodynamics" """).rows
        assert [r[0] for r in rows] == ["Calculus I", "Algebra I"]

    def test_count_distinct_transitive(self, small_university):
        value = small_university.query("""
            From course
            Retrieve count distinct (transitive(prerequisites))
            Where title = "Quantum Chromodynamics" """).scalar()
        assert value == 2

    def test_closure_handles_cycles(self, empty_university):
        db = empty_university
        for number, title in [(1, "A"), (2, "B"), (3, "C")]:
            db.execute(f'Insert course(course-no := {number}, '
                       f'title := "{title}", credits := 1)')
        db.execute('Modify course(prerequisites := include course with '
                   '(title = "B")) Where title = "A"')
        db.execute('Modify course(prerequisites := include course with '
                   '(title = "C")) Where title = "B"')
        db.execute('Modify course(prerequisites := include course with '
                   '(title = "A")) Where title = "C"')
        rows = db.query("""
            Retrieve title of transitive(prerequisites) of course
            Where title of course = "A" """).rows
        assert sorted(r[0] for r in rows) == ["B", "C"]  # no infinite loop

    def test_inverse_direction_closure(self, small_university):
        rows = small_university.query("""
            Retrieve Title of Transitive(prerequisite-of) of Course
            Where Title of Course = "Algebra I" """).rows
        assert [r[0] for r in rows] == ["Calculus I",
                                        "Quantum Chromodynamics"]


class TestOrderingAndDistinct:
    def test_perspective_order_is_surrogate_order(self, small_university):
        rows = small_university.query("From course Retrieve title").rows
        assert [r[0] for r in rows] == [
            "Algebra I", "Calculus I", "Quantum Chromodynamics"]

    def test_order_by_descending(self, small_university):
        rows = small_university.query(
            "From course Retrieve title, credits Order By credits Desc").rows
        assert [r[1] for r in rows] == [5, 4, 3]

    def test_order_by_nulls_last(self, small_university):
        rows = small_university.query(
            "From person Retrieve name Order By birthdate").rows
        assert rows[-1] == ("Lone Wolf",)   # null birthdate sorts last

    def test_distinct(self, small_university):
        rows = small_university.query(
            "From course Retrieve Table Distinct credits").rows
        assert len(rows) == len({r for r in rows})

    def test_like_pattern(self, small_university):
        rows = small_university.query(
            'From person Retrieve name Where name like "J%e"').rows
        assert {r[0] for r in rows} == {"John Doe", "Jane Roe", "Joe Bloke"}


class TestNullLogic:
    def test_null_comparison_is_unknown_not_error(self, small_university):
        rows = small_university.query("""
            From person Retrieve name Where birthdate < "1946-01-01" """).rows
        assert {r[0] for r in rows} == {"John Doe", "Joe Bloke"}

    def test_arithmetic_with_null_yields_null(self, small_university):
        rows = small_university.query(
            "From instructor Retrieve name, salary + bonus").rows
        joe = [r for r in rows if r[0] == "Joe Bloke"][0]
        assert is_null(joe[1])  # Joe has no bonus
        jane = [r for r in rows if r[0] == "Jane Roe"][0]
        assert jane[1] == Decimal("65000.00")

    def test_not_unknown_is_unknown(self, small_university):
        # NOT (null < x) is still unknown -> row not selected.
        rows = small_university.query("""
            From person Retrieve name
            Where not (birthdate < "1946-01-01")""").rows
        assert {r[0] for r in rows} == {"Jane Roe"}

    def test_isa(self, small_university):
        rows = small_university.query("""
            From person Retrieve name
            Where person isa instructor and not person isa student""").rows
        assert {r[0] for r in rows} == {"Joe Bloke", "Jane Roe"}


class TestResultSetApi:
    def test_columns_default_to_described_expressions(self, small_university):
        result = small_university.query(
            "From student Retrieve name, name of advisor")
        assert result.columns == ["name", "name of advisor"]

    def test_scalar_requires_1x1(self, small_university):
        result = small_university.query("From student Retrieve name")
        with pytest.raises(ValueError):
            result.scalar()

    def test_pretty_renders_nulls(self, small_university):
        text = small_university.query(
            "From student Retrieve name, name of advisor").pretty()
        assert "?" in text and "John Doe" in text

    def test_to_dicts(self, small_university):
        dicts = small_university.query(
            "From course Retrieve title, credits").to_dicts()
        assert dicts[0] == {"title": "Algebra I", "credits": 3}


class TestTransitiveChains:
    """§4.7: "Transitive closure can be performed on any cyclic chain of
    EVAs (the single reflexive EVA ... is a cyclic chain one element
    long)." — the multi-EVA case."""

    DDL = """
    Class Author ( aname: string[10];
      wrote: book inverse is written-by mv );
    Class Book ( btitle: string[10];
      inspired: author inverse is inspired-of mv );
    """

    @staticmethod
    def build():
        from repro import Database
        db = Database(TestTransitiveChains.DDL, constraint_mode="off")
        for a in ("A1", "A2", "A3"):
            db.execute(f'Insert author(aname := "{a}")')
        for b in ("B1", "B2"):
            db.execute(f'Insert book(btitle := "{b}")')
        db.execute('Modify author(wrote := book with (btitle = "B1"))'
                   ' Where aname = "A1"')
        db.execute('Modify book(inspired := author with (aname = "A2"))'
                   ' Where btitle = "B1"')
        db.execute('Modify author(wrote := book with (btitle = "B2"))'
                   ' Where aname = "A2"')
        db.execute('Modify book(inspired := author with (aname = "A3"))'
                   ' Where btitle = "B2"')
        return db

    def test_two_eva_cycle(self):
        db = self.build()
        rows = db.query(
            'Retrieve aname of transitive(inspired of wrote) of author'
            ' Where aname of author = "A1"').rows
        assert [r[0] for r in rows] == ["A2", "A3"]

    def test_chain_levels_in_structured_output(self):
        db = self.build()
        result = db.query(
            'Retrieve Structure aname of transitive(inspired of wrote)'
            ' of author Where aname of author = "A1"')
        closure = [r.level for r in result.structured
                   if r.format_name == "inspired"]
        assert closure == [1, 2]

    def test_chain_count(self):
        db = self.build()
        value = db.query(
            'From author Retrieve count(transitive(inspired of wrote))'
            ' Where aname = "A1"').scalar()
        assert value == 2

    def test_non_cyclic_chain_rejected(self):
        from repro import QualificationError
        db = self.build()
        with pytest.raises(QualificationError, match="cyclic"):
            db.query('Retrieve btitle of transitive(wrote) of author')

    def test_chain_through_unknown_eva_rejected(self):
        from repro import QualificationError
        db = self.build()
        with pytest.raises(QualificationError):
            db.query('Retrieve aname of transitive(ghost of wrote)'
                     ' of author')
