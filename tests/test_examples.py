"""Every shipped example must run to completion (they are executable
documentation; a broken example is a broken doc)."""

import importlib.util
import io
import pathlib
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath("examples")
    .glob("*.py"))


def run_example(path: pathlib.Path) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    captured = io.StringIO()
    with redirect_stdout(captured):
        spec.loader.exec_module(module)
        module.main()
    return captured.getvalue()


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path):
    output = run_example(path)
    assert output.strip(), f"{path.name} produced no output"


def test_quickstart_shows_outer_join():
    path = next(p for p in EXAMPLES if p.stem == "quickstart")
    output = run_example(path)
    assert "Joe Bloke" in output
    assert "?" in output            # Lone Wolf's null advisor

def test_registrar_shows_rejections():
    path = next(p for p in EXAMPLES if p.stem == "registrar")
    output = run_example(path)
    assert "rejected" in output
    assert "too few credits" in output

def test_physical_tuning_reports_all_mappings():
    path = next(p for p in EXAMPLES if p.stem == "physical_tuning")
    output = run_example(path)
    for word in ("common", "dedicated", "clustered", "pointer",
                 "variable-format", "separate-units"):
        assert word in output

def test_time_travel_reconstructs_past():
    path = next(p for p in EXAMPLES if p.stem == "time_travel")
    output = run_example(path)
    assert "salary as hired" in output.lower() or "50000" in output
    assert "Mechanics, Optics" in output
