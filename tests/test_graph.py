"""Generalization-graph tests: DAG invariants and traversal (paper §3.1)."""

import pytest

from repro.errors import SchemaError
from repro.schema.graph import GeneralizationGraph


def university_graph():
    graph = GeneralizationGraph()
    graph.add_class("person", [])
    graph.add_class("student", ["person"])
    graph.add_class("instructor", ["person"])
    graph.add_class("teaching-assistant", ["student", "instructor"])
    graph.add_class("course", [])
    graph.finalize()
    return graph


class TestValidation:
    def test_cycle_rejected(self):
        graph = GeneralizationGraph()
        graph.add_class("a", ["b"])
        graph.add_class("b", ["a"])
        with pytest.raises(SchemaError, match="cycle"):
            graph.finalize()

    def test_self_superclass_rejected(self):
        graph = GeneralizationGraph()
        graph.add_class("a", ["a"])
        with pytest.raises(SchemaError):
            graph.finalize()

    def test_unknown_superclass(self):
        graph = GeneralizationGraph()
        graph.add_class("a", ["ghost"])
        with pytest.raises(SchemaError, match="unknown"):
            graph.finalize()

    def test_two_base_ancestors_rejected(self):
        # The paper: "the set of ancestors of any node contain at most one
        # base class".
        graph = GeneralizationGraph()
        graph.add_class("base1", [])
        graph.add_class("base2", [])
        graph.add_class("mixed", ["base1", "base2"])
        with pytest.raises(SchemaError, match="base-class ancestor"):
            graph.finalize()

    def test_diamond_with_single_base_allowed(self):
        graph = university_graph()
        assert graph.base_class_of("teaching-assistant") == "person"


class TestTraversal:
    def test_ancestors(self):
        graph = university_graph()
        assert graph.ancestors("teaching-assistant") == [
            "student", "instructor", "person"]
        assert graph.ancestors("person") == []

    def test_descendants(self):
        graph = university_graph()
        assert set(graph.descendants("person")) == {
            "student", "instructor", "teaching-assistant"}

    def test_levels(self):
        graph = university_graph()
        assert graph.level("person") == 0
        assert graph.level("student") == 1
        assert graph.level("teaching-assistant") == 2

    def test_hierarchy_depth(self):
        graph = university_graph()
        assert graph.hierarchy_depth("person") == 3
        assert graph.hierarchy_depth("course") == 1

    def test_is_ancestor_reflexive(self):
        graph = university_graph()
        assert graph.is_ancestor("person", "person")
        assert graph.is_ancestor("person", "teaching-assistant")
        assert not graph.is_ancestor("student", "instructor")

    def test_same_hierarchy(self):
        graph = university_graph()
        assert graph.same_hierarchy("student", "instructor")
        assert not graph.same_hierarchy("student", "course")

    def test_topological_order(self):
        graph = university_graph()
        order = graph.topological_order()
        assert order.index("person") < order.index("student")
        assert order.index("student") < order.index("teaching-assistant")
        assert order.index("instructor") < order.index("teaching-assistant")

    def test_tree_detection(self):
        graph = university_graph()
        # TA has two immediate superclasses: not a tree hierarchy.
        assert not graph.is_tree_hierarchy("person")
        assert graph.is_tree_hierarchy("course")


class TestInsertionPath:
    def test_full_chain_from_base(self):
        graph = university_graph()
        path = graph.insertion_path("person", "teaching-assistant")
        assert path == ["student", "instructor", "teaching-assistant"] or \
               path == ["instructor", "student", "teaching-assistant"]

    def test_from_intermediate_keeps_other_branch(self):
        # INSERT teaching-assistant FROM student must still add the
        # INSTRUCTOR role (paper §4.8: roles added "as needed").
        graph = university_graph()
        path = graph.insertion_path("student", "teaching-assistant")
        assert "instructor" in path
        assert "student" not in path
        assert path[-1] == "teaching-assistant"

    def test_non_ancestor_rejected(self):
        graph = university_graph()
        with pytest.raises(SchemaError):
            graph.insertion_path("course", "student")
