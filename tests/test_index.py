"""Index tests: hash, ordered (index-sequential) and direct keys (§5.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage import DirectIndex, HashIndex, OrderedIndex, RID
from repro.storage.index import make_index


class TestHashIndex:
    def test_insert_lookup_delete(self):
        index = HashIndex("h")
        index.insert("a", RID(0, 0))
        index.insert("a", RID(0, 1))
        assert index.lookup("a") == [RID(0, 0), RID(0, 1)]
        index.delete("a", RID(0, 0))
        assert index.lookup("a") == [RID(0, 1)]

    def test_unique_duplicate_rejected(self):
        index = HashIndex("h", unique=True)
        index.insert("a", RID(0, 0))
        with pytest.raises(StorageError):
            index.insert("a", RID(0, 1))

    def test_delete_missing(self):
        with pytest.raises(StorageError):
            HashIndex("h").delete("a", RID(0, 0))

    def test_probe_counting(self):
        index = HashIndex("h")
        index.insert(1, RID(0, 0))
        index.lookup(1)
        index.lookup(2)
        assert index.probes == 2

    def test_lookup_one(self):
        index = HashIndex("h")
        assert index.lookup_one("missing") is None
        index.insert("k", RID(1, 1))
        assert index.lookup_one("k") == RID(1, 1)


class TestOrderedIndex:
    def test_range_scan_inclusive(self):
        index = OrderedIndex("o")
        for i in range(10):
            index.insert(i, RID(0, i))
        keys = [k for k, _ in index.range(3, 6)]
        assert keys == [3, 4, 5, 6]

    def test_range_exclusive_bounds(self):
        index = OrderedIndex("o")
        for i in range(10):
            index.insert(i, RID(0, i))
        keys = [k for k, _ in index.range(3, 6, include_low=False,
                                          include_high=False)]
        assert keys == [4, 5]

    def test_open_ended_ranges(self):
        index = OrderedIndex("o")
        for i in range(5):
            index.insert(i, RID(0, i))
        assert [k for k, _ in index.range(low=3)] == [3, 4]
        assert [k for k, _ in index.range(high=1)] == [0, 1]

    def test_duplicates_under_one_key(self):
        index = OrderedIndex("o")
        index.insert(5, RID(0, 0))
        index.insert(5, RID(0, 1))
        assert len(index.lookup(5)) == 2

    def test_unique_mode(self):
        index = OrderedIndex("o", unique=True)
        index.insert(5, RID(0, 0))
        with pytest.raises(StorageError):
            index.insert(5, RID(0, 1))

    def test_height_grows_with_entries(self):
        index = OrderedIndex("o")
        assert index.height() == 1
        for i in range(100):
            index.insert(i, RID(0, i))
        assert index.height() == 2
        assert index.probe_cost() == 2.0

    def test_delete_removes_key(self):
        index = OrderedIndex("o")
        index.insert(1, RID(0, 0))
        index.delete(1, RID(0, 0))
        assert index.lookup(1) == []
        with pytest.raises(StorageError):
            index.delete(1, RID(0, 0))


class TestDirectIndex:
    def test_integer_keys_only(self):
        index = DirectIndex("d")
        with pytest.raises(StorageError):
            index.insert("a", RID(0, 0))

    def test_direct_lookup_free(self):
        index = DirectIndex("d")
        index.insert(7, RID(0, 3))
        assert index.lookup_one(7) == RID(0, 3)
        assert index.probe_cost() == 0.0

    def test_duplicate_rejected(self):
        index = DirectIndex("d")
        index.insert(7, RID(0, 3))
        with pytest.raises(StorageError):
            index.insert(7, RID(1, 1))


class TestFactory:
    def test_make_index_kinds(self):
        assert make_index("hash", "x").kind == "hash"
        assert make_index("ordered", "x").kind == "ordered"
        assert make_index("direct", "x").kind == "direct"
        with pytest.raises(StorageError):
            make_index("btree", "x")


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 20)),
                min_size=1, max_size=80))
def test_ordered_index_matches_sorted_model(operations):
    """Property: the ordered index agrees with a sorted-dict model and its
    range scans return keys in order."""
    index = OrderedIndex("o")
    model = {}
    for insert, key in operations:
        if insert:
            if key not in model:
                model[key] = RID(0, key)
                index.insert(key, model[key])
        elif key in model:
            index.delete(key, model.pop(key))
    scanned = [k for k, _ in index.range()]
    assert scanned == sorted(model)
    for key, rid in model.items():
        assert index.lookup(key) == [rid]
