"""MVCC snapshot isolation: Retrieves over versioned records.

Readers pin a commit epoch and never block on (or take) class locks;
writers stage logical pre-images that commit atomically at an epoch
bump.  These tests drive the full stack — ``Session`` snapshot
Retrieves over ``MapperStore`` version chains — plus the
``VersionManager`` GC behaviour directly.
"""

import threading
import time

import pytest

from repro import Database
from repro.engine.sessions import Session
from repro.workloads import UNIVERSITY_DDL


@pytest.fixture()
def db():
    database = Database(UNIVERSITY_DDL, constraint_mode="off")
    database.execute('Insert department(dept-nbr := 100, name := "Physics")')
    database.execute('Insert course(course-no := 101, title := "Algebra",'
                     ' credits := 3)')
    database.execute('Insert course(course-no := 102, title := "Calculus",'
                     ' credits := 4)')
    database.execute('Insert student(name := "John Doe",'
                     ' soc-sec-no := 456887766,'
                     ' courses-enrolled := course with (title = "Algebra"))')
    return database


def credits_of(session, title):
    return session.query(
        f'From course Retrieve credits Where title = "{title}"').scalar()


class TestSnapshotReads:
    def test_reader_sees_preimage_of_open_writer(self, db):
        writer = Session(db)
        reader = Session(db)
        writer.execute('Modify course(credits := 9) Where title = "Algebra"')
        # The writer's transaction is open: its new value is invisible.
        assert credits_of(reader, "Algebra") == 3
        writer.commit()
        assert credits_of(reader, "Algebra") == 9

    def test_reader_takes_no_locks_and_never_blocks(self, db):
        writer = Session(db)
        reader = Session(db)
        writer.execute('Modify course(credits := 9) Where title = "Algebra"')
        # Qualified single-class Modify locks at entity granularity now:
        # IX on the class, X on the one matching entity.
        assert writer.holdings() == {"course": "intention-exclusive"}
        assert list(writer.entity_holdings().values()) == ["exclusive"]
        started = time.monotonic()
        assert credits_of(reader, "Algebra") == 3
        assert time.monotonic() - started < 2.0
        assert reader.holdings() == {}
        writer.abort()

    def test_read_your_own_writes(self, db):
        writer = Session(db)
        writer.execute('Modify course(credits := 9) Where title = "Algebra"')
        assert credits_of(writer, "Algebra") == 9
        writer.commit()

    def test_uncommitted_insert_invisible_to_others(self, db):
        writer = Session(db)
        reader = Session(db)
        writer.execute('Insert course(course-no := 103, title := "Logic",'
                       ' credits := 2)')
        assert len(reader.query("From course Retrieve title").rows) == 2
        assert len(writer.query("From course Retrieve title").rows) == 3
        writer.commit()
        assert len(reader.query("From course Retrieve title").rows) == 3

    def test_uncommitted_delete_still_visible_to_others(self, db):
        writer = Session(db)
        reader = Session(db)
        writer.execute('Delete course Where title = "Calculus"')
        rows = reader.query("From course Retrieve title").rows
        assert sorted(r[0] for r in rows) == ["Algebra", "Calculus"]
        assert credits_of(reader, "Calculus") == 4
        writer.commit()
        rows = reader.query("From course Retrieve title").rows
        assert [r[0] for r in rows] == ["Algebra"]

    def test_aborted_writes_never_visible(self, db):
        writer = Session(db)
        reader = Session(db)
        writer.execute('Modify course(credits := 9) Where title = "Algebra"')
        writer.execute('Insert course(course-no := 104, title := "Sets",'
                       ' credits := 1)')
        writer.abort()
        assert credits_of(reader, "Algebra") == 3
        assert credits_of(Session(db), "Algebra") == 3
        assert len(reader.query("From course Retrieve title").rows) == 2

    def test_mv_eva_fanout_snapshot(self, db):
        """Include on an MV EVA stages fanout pre-images on both sides:
        a concurrent reader sees neither the new membership nor the new
        inverse until commit."""
        writer = Session(db)
        reader = Session(db)
        writer.execute('Modify student(courses-enrolled := include course'
                       ' with (title = "Calculus"))'
                       ' Where name = "John Doe"')
        assert reader.query(
            'From student Retrieve count(courses-enrolled) of student'
            ' Where name = "John Doe"').scalar() == 1
        assert reader.query(
            'From course Retrieve count(students-enrolled) of course'
            ' Where title = "Calculus"').scalar() == 0
        # The writer sees its own fanout.
        assert writer.query(
            'From student Retrieve count(courses-enrolled) of student'
            ' Where name = "John Doe"').scalar() == 2
        writer.commit()
        assert reader.query(
            'From course Retrieve count(students-enrolled) of course'
            ' Where title = "Calculus"').scalar() == 1

    def test_snapshot_pins_epoch_across_concurrent_commit(self, db):
        """A snapshot opened before a commit keeps reading the old epoch
        even after the commit lands."""
        from repro.dml.parser import parse_dml
        store = db.store
        store.enable_mvcc()
        query = parse_dml('From course Retrieve credits'
                          ' Where title = "Algebra"')
        snap = store.begin_snapshot(None)
        try:
            writer = Session(db)
            writer.execute('Modify course(credits := 9)'
                           ' Where title = "Algebra"')
            writer.commit()
            with store.snapshot_scope(snap):
                result = db._run_retrieve(
                    query, executor=db._statement_executor())
            assert result.scalar() == 3
        finally:
            store.end_snapshot(snap)
        assert Session(db).query('From course Retrieve credits'
                                 ' Where title = "Algebra"').scalar() == 9


class TestVersionManager:
    def test_commit_bumps_epoch_once_per_transaction(self, db):
        store = db.store
        store.enable_mvcc()
        before = store.versions.statistics()["epoch"]
        writer = Session(db)
        writer.execute('Modify course(credits := 9) Where title = "Algebra"')
        writer.execute('Modify course(credits := 8) Where title = "Calculus"')
        writer.commit()
        after = store.versions.statistics()["epoch"]
        assert after == before + 1

    def test_chains_pruned_when_no_snapshot_is_active(self, db):
        store = db.store
        store.enable_mvcc()
        writer = Session(db)
        writer.execute('Modify course(credits := 9) Where title = "Algebra"')
        writer.commit()
        stats = store.versions.statistics()
        assert stats["active_snapshots"] == 0
        assert stats["chained_keys"] == 0

    def test_chains_retained_while_snapshot_is_pinned(self, db):
        store = db.store
        store.enable_mvcc()
        snap = store.begin_snapshot(None)
        writer = Session(db)
        writer.execute('Modify course(credits := 9) Where title = "Algebra"')
        writer.commit()
        try:
            assert store.versions.statistics()["chained_keys"] > 0
            with store.snapshot_scope(snap):
                pass
        finally:
            store.end_snapshot(snap)
        # Releasing the last snapshot lets the next commit GC the chain.
        writer.execute('Modify course(credits := 7) Where title = "Algebra"')
        writer.commit()
        assert store.versions.statistics()["chained_keys"] == 0

    def test_reader_under_parallel_morsels_sees_snapshot(self, db):
        """Snapshot scope propagates to morsel worker threads."""
        for i in range(20):
            db.execute(f'Insert course(course-no := {200 + i},'
                       f' title := "C{i}", credits := 1)')
        db.executor.parallelism = 4
        writer = Session(db)
        reader = Session(db)
        writer.execute("Modify course(credits := 15) Where credits = 1")
        rows = reader.query("From course Retrieve credits"
                            " Where credits = 1").rows
        assert len(rows) == 20
        writer.commit()
        rows = reader.query("From course Retrieve credits"
                            " Where credits = 1").rows
        assert rows == []


class TestMixedWorkload:
    def test_many_readers_one_writer_no_blocking(self, db):
        """Eight snapshot readers run to completion while a writer holds
        the course class exclusively the whole time."""
        writer = Session(db)
        writer.execute('Modify course(credits := 9) Where title = "Algebra"')
        observed = []
        errors = []

        def read(_i):
            try:
                session = Session(db)
                observed.append(credits_of(session, "Algebra"))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=read, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not any(thread.is_alive() for thread in threads)
        assert errors == []
        assert observed == [3] * 8
        writer.commit()
        assert credits_of(Session(db), "Algebra") == 9
