"""Unit coverage for the small shared utilities: naming conventions and
the token-stream helpers the parsers are built on."""

import pytest

from repro.errors import DMLSyntaxError
from repro.lexer import IDENT, SYMBOL, TokenStream
from repro.naming import canon, is_identifier, pythonic


class TestNaming:
    def test_canon_folds_case_and_underscores(self):
        assert canon("Soc_Sec_No") == "soc-sec-no"
        assert canon("  COURSES-ENROLLED ") == "courses-enrolled"

    def test_pythonic_is_inverse_style(self):
        assert pythonic("courses-enrolled") == "courses_enrolled"

    def test_is_identifier(self):
        assert is_identifier("soc-sec-no")
        assert is_identifier("a1_b-c")
        assert not is_identifier("1abc")
        assert not is_identifier("")
        assert not is_identifier("has space")


class TestTokenStream:
    def test_accept_and_expect(self):
        stream = TokenStream.from_text("from student retrieve")
        assert stream.accept_keyword("from")
        token = stream.expect_ident("class name")
        assert token.value == "student"
        stream.expect_keyword("retrieve")
        assert stream.at_end()

    def test_expect_failure_reports_position(self):
        stream = TokenStream.from_text("from 123")
        stream.advance()
        with pytest.raises(DMLSyntaxError) as info:
            stream.expect_ident("class name")
        assert info.value.line == 1 and info.value.column == 6

    def test_save_restore(self):
        stream = TokenStream.from_text("a b c")
        mark = stream.save()
        stream.advance()
        stream.advance()
        stream.restore(mark)
        assert stream.current.value == "a"

    def test_peek_does_not_consume(self):
        stream = TokenStream.from_text("a (")
        assert stream.peek().matches(SYMBOL, "(")
        assert stream.current.kind == IDENT

    def test_check_symbol_variants(self):
        stream = TokenStream.from_text(":= ..")
        assert stream.check_symbol(":=", "=")
        stream.advance()
        assert stream.accept_symbol("..")

    def test_expect_integer(self):
        stream = TokenStream.from_text("42 x")
        assert stream.expect_integer() == 42
        with pytest.raises(DMLSyntaxError):
            stream.expect_integer()

    def test_eof_advance_is_safe(self):
        stream = TokenStream.from_text("")
        assert stream.at_end()
        stream.advance()
        assert stream.at_end()
