"""Relational baseline tests: operator correctness and SIM equivalence
(the answer-equality half of experiment E7)."""

import pytest

from repro.baseline import RelationalDatabase, load_university_relational
from repro.types.tvl import is_null
from repro.workloads import build_university


@pytest.fixture(scope="module")
def pair():
    sim_db = build_university(departments=3, instructors=8, students=30,
                              courses=15, seed=13)
    rel_db = load_university_relational(sim_db)
    return sim_db, rel_db


class TestOperators:
    def make_db(self):
        db = RelationalDatabase()
        db.create_table("t", {"k": 6, "v": 10}, indexes=["k"])
        for k, v in [(1, "a"), (2, "b"), (3, "a")]:
            db.insert("t", {"k": k, "v": v})
        return db

    def test_scan_and_select(self):
        db = self.make_db()
        rows = list(db.select(db.scan("t"), lambda r: r["v"] == "a"))
        assert [r["k"] for r in rows] == [1, 3]

    def test_index_lookup(self):
        db = self.make_db()
        assert db.index_lookup("t", "k", 2)[0]["v"] == "b"
        with pytest.raises(Exception):
            db.index_lookup("t", "v", "a")

    def test_project(self):
        db = self.make_db()
        assert list(db.project(db.scan("t"), ["v"])) == [
            ("a",), ("b",), ("a",)]

    def test_hash_join_via_index(self):
        db = self.make_db()
        db.create_table("s", {"k": 6, "w": 10})
        db.insert("s", {"k": 1, "w": "x"})
        db.insert("s", {"k": 3, "w": "y"})
        joined = list(db.hash_join(db.scan("s"), "t", "k", "k", prefix="t_"))
        assert [(r["w"], r["t_v"]) for r in joined] == [("x", "a"),
                                                        ("y", "a")]

    def test_left_outer_join_keeps_unmatched(self):
        db = self.make_db()
        db.create_table("s", {"k": 6, "w": 10})
        db.insert("s", {"k": 1, "w": "x"})
        db.insert("s", {"k": 9, "w": "z"})
        joined = list(db.left_outer_join(db.scan("s"), "t", "k", "k",
                                         prefix="t_"))
        assert joined[0]["t_v"] == "a"
        assert joined[1]["t_v"] is None

    def test_sort_nulls_first(self):
        db = self.make_db()
        db.insert("t", {"k": 4, "v": None})
        ordered = db.sort(db.scan("t"), ["v"])
        assert ordered[0]["v"] is None


class TestSimEquivalence:
    def test_student_advisor_outer_join(self, pair):
        """The §4.1 query in both systems: identical answers."""
        sim_db, rel_db = pair
        sim_rows = sorted(
            (name, None if is_null(advisor) else advisor)
            for name, advisor in sim_db.query(
                "From Student Retrieve Name, Name of Advisor").rows)

        students = rel_db.hash_join(rel_db.scan("student"), "person",
                                    "id", "id")
        joined = rel_db.left_outer_join(students, "instructor",
                                        "advisor_id", "id", prefix="adv_")
        with_names = rel_db.left_outer_join(joined, "person",
                                            "adv_id", "id", prefix="advp_")
        rel_rows = sorted((r["name"], r["advp_name"]) for r in with_names)
        assert sim_rows == rel_rows

    def test_enrollment_counts(self, pair):
        sim_db, rel_db = pair
        sim_rows = sorted(sim_db.query(
            "From student Retrieve soc-sec-no,"
            " count(courses-enrolled) of student").rows)
        counts = {}
        for row in rel_db.scan("enrollment"):
            counts[row["student_id"]] = counts.get(row["student_id"], 0) + 1
        rel_rows = []
        for student in rel_db.scan("student"):
            person = rel_db.index_lookup("person", "id", student["id"])[0]
            rel_rows.append((person["ssn"], counts.get(student["id"], 0)))
        assert sim_rows == sorted(rel_rows)

    def test_department_salary_average(self, pair):
        sim_db, rel_db = pair
        sim_rows = {name: avg for name, avg in sim_db.query(
            "From department Retrieve name,"
            " avg(salary of instructors-employed) of department").rows}
        totals = {}
        for instructor in rel_db.scan("instructor"):
            dept = instructor["dept_id"]
            if dept is None or instructor["salary"] is None:
                continue
            bucket = totals.setdefault(dept, [0, 0])
            bucket[0] += instructor["salary"]
            bucket[1] += 1
        for department in rel_db.scan("department"):
            name = department["name"]
            bucket = totals.get(department["id"])
            if bucket is None:
                assert is_null(sim_rows[name])
            else:
                assert sim_rows[name] == bucket[0] / bucket[1]

    def test_row_counts_match(self, pair):
        sim_db, rel_db = pair
        assert rel_db.table("person").row_count == \
            sim_db.store.class_count("person")
        assert rel_db.table("enrollment").row_count == sum(
            sim_db.query("From student Retrieve count(courses-enrolled)"
                         " of student").column(0))
