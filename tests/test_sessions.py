"""Multi-session concurrency tests: blocking 2PL, deadlock detection,
lock upgrades, and the legacy fail-fast mode (``lock_timeout=0``)."""

import threading
import time

import pytest

from repro import Database
from repro.engine.sessions import (
    DeadlockError,
    LockConflict,
    LockManager,
    LockTimeout,
    Session,
)
from repro.workloads import UNIVERSITY_DDL


@pytest.fixture()
def db():
    database = Database(UNIVERSITY_DDL, constraint_mode="off")
    database.execute('Insert course(course-no := 1, title := "T",'
                     ' credits := 3)')
    database.execute('Insert department(dept-nbr := 100, name := "D")')
    return database


def legacy_session(db):
    """Fail-fast, shared-lock-read sessions: the pre-MVCC semantics."""
    return Session(db, mvcc=False, lock_timeout=0)


class TestLockManager:
    def test_shared_locks_compatible(self):
        locks = LockManager()
        locks.acquire_shared(1, "course")
        locks.acquire_shared(2, "course")

    def test_exclusive_blocks_shared_failfast(self):
        locks = LockManager()
        locks.acquire_exclusive(1, "course")
        with pytest.raises(LockConflict):
            locks.acquire_shared(2, "course", timeout=0)

    def test_shared_blocks_exclusive_failfast(self):
        locks = LockManager()
        locks.acquire_shared(1, "course")
        with pytest.raises(LockConflict):
            locks.acquire_exclusive(2, "course", timeout=0)

    def test_upgrade_own_lock(self):
        locks = LockManager()
        assert locks.acquire_shared(1, "course") == "new"
        assert locks.acquire_exclusive(1, "course") == "upgraded"
        assert locks.holdings(1)["course"] == "exclusive"

    def test_reentrant_grants_are_held(self):
        locks = LockManager()
        locks.acquire_shared(1, "course")
        assert locks.acquire_shared(1, "course") == "held"
        locks.acquire_exclusive(1, "department")
        assert locks.acquire_exclusive(1, "department") == "held"
        # shared under own exclusive is already covered
        assert locks.acquire_shared(1, "department") == "held"

    def test_release_all(self):
        locks = LockManager()
        locks.acquire_exclusive(1, "course")
        locks.release_all(1)
        locks.acquire_exclusive(2, "course")

    def test_blocking_acquire_waits_for_release(self):
        locks = LockManager()
        locks.acquire_exclusive(1, "course")
        got = []

        def contender():
            got.append(locks.acquire_exclusive(2, "course", timeout=5.0))

        thread = threading.Thread(target=contender)
        thread.start()
        time.sleep(0.05)
        assert not got             # still blocked
        locks.release_all(1)
        thread.join(timeout=5.0)
        assert got == ["new"]
        assert locks.holdings(2)["course"] == "exclusive"

    def test_lock_timeout(self):
        locks = LockManager()
        locks.acquire_exclusive(1, "course")
        start = time.monotonic()
        with pytest.raises(LockTimeout):
            locks.acquire_exclusive(2, "course", timeout=0.2)
        assert time.monotonic() - start >= 0.15
        assert locks.statistics()["timeouts"] == 1

    def test_deadlock_detected_not_timed_out(self):
        """A 2-cycle is resolved by victim abort well before the (long)
        timeout, and the victim is the youngest session in the cycle."""
        locks = LockManager()
        locks.acquire_exclusive(1, "a")
        locks.acquire_exclusive(2, "b")
        results = {}

        def older():
            try:
                locks.acquire_exclusive(1, "b", timeout=30.0)
                results[1] = "granted"
            except DeadlockError:
                results[1] = "deadlock"
                locks.release_all(1)

        def younger():
            try:
                locks.acquire_exclusive(2, "a", timeout=30.0)
                results[2] = "granted"
            except DeadlockError:
                results[2] = "deadlock"
                locks.release_all(2)

        start = time.monotonic()
        threads = [threading.Thread(target=older),
                   threading.Thread(target=younger)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert time.monotonic() - start < 10.0   # no timeout-waiting
        assert results[2] == "deadlock"          # youngest loses...
        assert results[1] == "granted"           # ...and the cycle breaks
        assert locks.statistics()["deadlocks"] >= 1

    def test_deadlock_victim_deterministic(self):
        """The same interleaving always dooms the same (youngest)
        session, independent of which thread reaches detection first."""
        for _ in range(5):
            locks = LockManager()
            locks.acquire_exclusive(1, "a")
            locks.acquire_exclusive(2, "b")
            victims = []

            def contend(sid, want):
                try:
                    locks.acquire_exclusive(sid, want, timeout=30.0)
                except DeadlockError:
                    victims.append(sid)
                finally:
                    locks.release_all(sid)

            threads = [threading.Thread(target=contend, args=(1, "b")),
                       threading.Thread(target=contend, args=(2, "a"))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
            assert victims == [2]

    def test_upgrade_under_contention(self):
        """Two readers racing to upgrade form an upgrade deadlock; one is
        aborted, the other gets the exclusive lock."""
        locks = LockManager()
        locks.acquire_shared(1, "course")
        locks.acquire_shared(2, "course")
        outcome = {}

        def upgrade(sid):
            try:
                outcome[sid] = locks.acquire_exclusive(sid, "course",
                                                       timeout=30.0)
            except DeadlockError:
                outcome[sid] = "deadlock"
                locks.release_all(sid)

        threads = [threading.Thread(target=upgrade, args=(sid,))
                   for sid in (1, 2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert sorted(outcome.values()) == ["deadlock", "upgraded"]
        assert outcome[2] == "deadlock"          # youngest loses

    def test_rollback_drops_new_and_demotes_upgrades(self):
        locks = LockManager()
        locks.acquire_shared(1, "course")
        acquired = [("course", locks.acquire_exclusive(1, "course")),
                    ("department", locks.acquire_exclusive(1, "department"))]
        locks.rollback(1, acquired)
        # upgrade demoted back to shared; new lock fully released
        assert locks.holdings(1) == {"course": "shared"}
        locks.acquire_exclusive(2, "department", timeout=0)

    def test_rollback_keeps_preheld(self):
        locks = LockManager()
        locks.acquire_exclusive(1, "course")
        acquired = [("course", locks.acquire_exclusive(1, "course"))]
        assert acquired[0][1] == "held"
        locks.rollback(1, acquired)
        assert locks.holdings(1)["course"] == "exclusive"


class TestSessions:
    """Legacy fail-fast semantics (mvcc=False, lock_timeout=0)."""

    def test_writer_blocks_reader_until_commit(self, db):
        alice, bob = legacy_session(db), legacy_session(db)
        alice.execute('Modify course(credits := 5) Where course-no = 1')
        with pytest.raises(LockConflict):
            bob.query("From course Retrieve title")
        alice.commit()
        assert bob.query("From course Retrieve credits").scalar() == 5
        bob.commit()

    def test_readers_share(self, db):
        alice, bob = legacy_session(db), legacy_session(db)
        assert alice.query("From course Retrieve title").rows
        assert bob.query("From course Retrieve title").rows
        alice.commit()
        bob.commit()

    def test_reader_blocks_writer(self, db):
        alice, bob = legacy_session(db), legacy_session(db)
        alice.query("From course Retrieve title")
        with pytest.raises(LockConflict):
            bob.execute('Modify course(credits := 9) Where course-no = 1')
        alice.commit()
        bob.execute('Modify course(credits := 9) Where course-no = 1')
        bob.commit()

    def test_abort_isolates_other_session(self, db):
        alice, bob = legacy_session(db), legacy_session(db)
        alice.execute('Insert course(course-no := 2, title := "New",'
                      ' credits := 1)')
        alice.abort()
        titles = bob.query("From course Retrieve title").column(0)
        assert titles == ["T"]
        bob.commit()

    def test_two_open_transactions_commit_independently(self, db):
        alice, bob = legacy_session(db), legacy_session(db)
        alice.execute('Insert course(course-no := 2, title := "A2",'
                      ' credits := 1)')
        bob.execute('Insert department(dept-nbr := 200, name := "D2")')
        bob.commit()
        alice.commit()
        assert len(db.query("From course Retrieve title")) == 2
        assert len(db.query("From department Retrieve name")) == 2

    def test_disjoint_classes_do_not_conflict(self, db):
        alice, bob = legacy_session(db), legacy_session(db)
        alice.execute('Modify course(credits := 7) Where course-no = 1')
        bob.execute('Modify department(name := "D9")'
                    ' Where dept-nbr = 100')
        alice.commit()
        bob.commit()
        assert db.query("From course Retrieve credits").scalar() == 7
        assert db.query("From department Retrieve name").scalar() == "D9"

    def test_update_locks_cover_eva_partners(self, db):
        # Modifying students can touch courses (enrolment EVA): a reader
        # of COURSE must conflict with a student writer.
        alice, bob = legacy_session(db), legacy_session(db)
        alice.execute('Insert student(soc-sec-no := 1, courses-enrolled :='
                      ' course with (course-no = 1))')
        with pytest.raises(LockConflict):
            bob.query("From course Retrieve title")
        alice.commit()
        bob.commit()

    def test_holdings_reporting(self, db):
        alice = legacy_session(db)
        alice.query("From course Retrieve title")
        assert alice.holdings()["course"] == "shared"
        alice.commit()
        assert alice.holdings() == {}

    def test_serializable_outcome(self, db):
        """The classic lost-update interleaving is prevented outright."""
        alice, bob = legacy_session(db), legacy_session(db)
        alice.execute('Modify course(credits := 1 + credits)'
                      ' Where course-no = 1')
        with pytest.raises(LockConflict):
            bob.execute('Modify course(credits := 1 + credits)'
                        ' Where course-no = 1')
        alice.commit()
        bob.execute('Modify course(credits := 1 + credits)'
                    ' Where course-no = 1')
        bob.commit()
        assert db.query("From course Retrieve credits").scalar() == 5


class TestConcurrentSessions:
    """Threaded sessions: blocking waits, victim retry, satellite fixes."""

    def test_session_ids_per_database(self):
        db_a = Database(UNIVERSITY_DDL, constraint_mode="off")
        db_b = Database(UNIVERSITY_DDL, constraint_mode="off")
        assert Session(db_a).session_id == 1
        assert Session(db_a).session_id == 2
        assert Session(db_b).session_id == 1   # independent counters

    def test_session_id_allocation_thread_safe(self, db):
        ids = []
        ids_lock = threading.Lock()

        def open_sessions():
            for _ in range(50):
                session = Session(db)
                with ids_lock:
                    ids.append(session.session_id)

        threads = [threading.Thread(target=open_sessions) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len(ids) == len(set(ids)) == 200

    def test_begin_detached_mints_unique_txn_ids(self, db):
        manager = db.store.transactions
        txn_ids = []
        ids_lock = threading.Lock()

        def mint():
            for _ in range(100):
                txn = manager.begin_detached()
                with ids_lock:
                    txn_ids.append(txn.transaction_id)

        threads = [threading.Thread(target=mint) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len(txn_ids) == len(set(txn_ids)) == 400

    def test_writer_blocks_then_reader_proceeds(self, db):
        """A blocking (non-MVCC) reader waits out the writer instead of
        failing, and sees the committed value."""
        alice = Session(db, mvcc=False)
        bob = Session(db, mvcc=False)
        alice.execute('Modify course(credits := 5) Where course-no = 1')
        seen = []

        def read():
            seen.append(bob.query("From course Retrieve credits",
                                  timeout=10.0).scalar())
            bob.commit()

        thread = threading.Thread(target=read)
        thread.start()
        time.sleep(0.05)
        alice.commit()
        thread.join(timeout=10.0)
        assert seen == [5]

    def test_statement_timeout_keeps_transaction(self, db):
        """A timed-out statement fails but the session's transaction and
        earlier locks survive; partial acquisition is rolled back."""
        alice = Session(db, mvcc=False)
        bob = Session(db, mvcc=False)
        alice.execute('Modify course(credits := 5) Where course-no = 1')
        bob.execute('Modify department(name := "D2") Where dept-nbr = 100')
        with pytest.raises(LockTimeout):
            bob.execute('Modify course(credits := 9) Where course-no = 1',
                        timeout=0.2)
        # bob still holds department exclusively, but nothing on course
        assert bob.holdings() == {"department": "exclusive"}
        alice.commit()
        bob.execute('Modify course(credits := 9) Where course-no = 1')
        bob.commit()
        assert db.query("From course Retrieve credits").scalar() == 9
        assert db.query("From department Retrieve name").scalar() == "D2"

    def test_deadlock_victim_statement_retried(self, db):
        """Fresh-transaction deadlock victims replay automatically: both
        opposite-order writers eventually commit."""
        barrier = threading.Barrier(2, timeout=10.0)
        errors = []

        def writer(first, second):
            session = Session(db)
            try:
                session.execute(f'Modify {first}(credits := 1 + credits)'
                                if first == "course" else
                                f'Modify {first}(name := "X")'
                                ' Where dept-nbr = 100')
                barrier.wait()
                session.execute(f'Modify {second}(credits := 1 + credits)'
                                if second == "course" else
                                f'Modify {second}(name := "Y")'
                                ' Where dept-nbr = 100')
                session.commit()
            except DeadlockError:
                session.abort()   # whole-transaction victim: caller retries
            except Exception as exc:   # pragma: no cover - diagnostic aid
                errors.append(exc)
                session.abort()

        threads = [
            threading.Thread(target=writer, args=("course", "department")),
            threading.Thread(target=writer, args=("department", "course")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert not any(thread.is_alive() for thread in threads)
        assert db._lock_manager.deadlocks >= 1

    def test_fresh_statement_deadlock_autoretries(self, db):
        """When the deadlocked statement is the transaction's first, the
        session replays it internally — the caller never sees the error."""
        results = []

        def writer(sid):
            session = Session(db)
            for _ in range(4):
                session.execute('Modify course(credits := 1 + credits)'
                                ' Where course-no = 1')
                session.commit()
            results.append(sid)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert sorted(results) == [0, 1, 2]
        # credits is range-typed 1..15: 3 + 3*4 = 15 exactly
        assert db.query("From course Retrieve credits").scalar() == 15

    def test_session_context_manager(self, db):
        with Session(db) as session:
            session.execute('Modify course(credits := 8) Where course-no = 1')
        assert db.query("From course Retrieve credits").scalar() == 8
        with pytest.raises(ValueError):
            with Session(db) as session:
                session.execute('Modify course(credits := 4)'
                                ' Where course-no = 1')
                raise ValueError("boom")
        assert db.query("From course Retrieve credits").scalar() == 8


@pytest.mark.lockdep
class TestLockdepIntegration:
    """Regressions for 2PL behavior under runtime lock-order checking
    (lockdep is on by default under pytest; these assert it stays
    silent and does not disturb the fail-fast path)."""

    def test_lock_timeout_zero_fail_fast_under_lockdep(self, db):
        from repro.engine import lockdep
        writer = Session(db)
        failfast = Session(db, lock_timeout=0)
        writer.execute('Modify course(credits := 4) Where course-no = 1')
        started = time.monotonic()
        with pytest.raises(LockConflict) as exc:
            failfast.execute(
                'Modify course(credits := 5) Where course-no = 1')
        elapsed = time.monotonic() - started
        # Fail-fast means *immediately*: no wait slice, no deadlock
        # search, and definitely not the 10s default timeout.
        assert not isinstance(exc.value, (LockTimeout, DeadlockError))
        assert elapsed < 0.5
        writer.commit()
        failfast.execute('Modify course(credits := 5) Where course-no = 1')
        failfast.commit()
        assert db.query("From course Retrieve credits").scalar() == 5
        assert lockdep.violations() == []

    def test_wait_slice_predicate_rechecks_before_grant(self, db):
        """The SIM304 fix: the condition wait re-evaluates its predicate
        under the lock, so a blocked writer wakes into a grant (not a
        stale-blockers loop) as soon as the holder commits."""
        from repro.engine import lockdep
        writer = Session(db)
        blocked = Session(db, lock_timeout=5.0)
        writer.execute('Modify course(credits := 6) Where course-no = 1')
        outcome = {}

        def contend():
            blocked.execute(
                'Modify course(credits := 7) Where course-no = 1')
            outcome["done"] = time.monotonic()
            blocked.commit()
        thread = threading.Thread(target=contend)
        thread.start()
        time.sleep(0.15)            # let it park in the wait
        released = time.monotonic()
        writer.commit()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        # Granted promptly after release: within a couple of wait
        # slices, not the full timeout.
        assert outcome["done"] - released < 1.0
        assert db.query("From course Retrieve credits").scalar() == 7
        assert lockdep.violations() == []
