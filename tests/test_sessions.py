"""Multi-session concurrency tests: strict 2PL at class granularity."""

import pytest

from repro import Database
from repro.engine.sessions import LockConflict, LockManager, Session
from repro.workloads import UNIVERSITY_DDL


@pytest.fixture()
def db():
    database = Database(UNIVERSITY_DDL, constraint_mode="off")
    database.execute('Insert course(course-no := 1, title := "T",'
                     ' credits := 3)')
    database.execute('Insert department(dept-nbr := 100, name := "D")')
    return database


class TestLockManager:
    def test_shared_locks_compatible(self):
        locks = LockManager()
        locks.acquire_shared(1, "course")
        locks.acquire_shared(2, "course")

    def test_exclusive_blocks_shared(self):
        locks = LockManager()
        locks.acquire_exclusive(1, "course")
        with pytest.raises(LockConflict):
            locks.acquire_shared(2, "course")

    def test_shared_blocks_exclusive(self):
        locks = LockManager()
        locks.acquire_shared(1, "course")
        with pytest.raises(LockConflict):
            locks.acquire_exclusive(2, "course")

    def test_upgrade_own_lock(self):
        locks = LockManager()
        locks.acquire_shared(1, "course")
        locks.acquire_exclusive(1, "course")
        assert locks.holdings(1)["course"] == "exclusive"

    def test_release_all(self):
        locks = LockManager()
        locks.acquire_exclusive(1, "course")
        locks.release_all(1)
        locks.acquire_exclusive(2, "course")


class TestSessions:
    def test_writer_blocks_reader_until_commit(self, db):
        alice, bob = Session(db), Session(db)
        alice.execute('Modify course(credits := 5) Where course-no = 1')
        with pytest.raises(LockConflict):
            bob.query("From course Retrieve title")
        alice.commit()
        assert bob.query("From course Retrieve credits").scalar() == 5
        bob.commit()

    def test_readers_share(self, db):
        alice, bob = Session(db), Session(db)
        assert alice.query("From course Retrieve title").rows
        assert bob.query("From course Retrieve title").rows
        alice.commit()
        bob.commit()

    def test_reader_blocks_writer(self, db):
        alice, bob = Session(db), Session(db)
        alice.query("From course Retrieve title")
        with pytest.raises(LockConflict):
            bob.execute('Modify course(credits := 9) Where course-no = 1')
        alice.commit()
        bob.execute('Modify course(credits := 9) Where course-no = 1')
        bob.commit()

    def test_abort_isolates_other_session(self, db):
        alice, bob = Session(db), Session(db)
        alice.execute('Insert course(course-no := 2, title := "New",'
                      ' credits := 1)')
        alice.abort()
        titles = bob.query("From course Retrieve title").column(0)
        assert titles == ["T"]
        bob.commit()

    def test_two_open_transactions_commit_independently(self, db):
        alice, bob = Session(db), Session(db)
        alice.execute('Insert course(course-no := 2, title := "A2",'
                      ' credits := 1)')
        bob.execute('Insert department(dept-nbr := 200, name := "D2")')
        bob.commit()
        alice.commit()
        assert len(db.query("From course Retrieve title")) == 2
        assert len(db.query("From department Retrieve name")) == 2

    def test_disjoint_classes_do_not_conflict(self, db):
        alice, bob = Session(db), Session(db)
        alice.execute('Modify course(credits := 7) Where course-no = 1')
        bob.execute('Modify department(name := "D9")'
                    ' Where dept-nbr = 100')
        alice.commit()
        bob.commit()
        assert db.query("From course Retrieve credits").scalar() == 7
        assert db.query("From department Retrieve name").scalar() == "D9"

    def test_update_locks_cover_eva_partners(self, db):
        # Modifying students can touch courses (enrolment EVA): a reader
        # of COURSE must conflict with a student writer.
        alice, bob = Session(db), Session(db)
        alice.execute('Insert student(soc-sec-no := 1, courses-enrolled :='
                      ' course with (course-no = 1))')
        with pytest.raises(LockConflict):
            bob.query("From course Retrieve title")
        alice.commit()
        bob.commit()

    def test_holdings_reporting(self, db):
        alice = Session(db)
        alice.query("From course Retrieve title")
        assert alice.holdings()["course"] == "shared"
        alice.commit()
        assert alice.holdings() == {}

    def test_serializable_outcome(self, db):
        """The classic lost-update interleaving is prevented outright."""
        alice, bob = Session(db), Session(db)
        alice.execute('Modify course(credits := 1 + credits)'
                      ' Where course-no = 1')
        with pytest.raises(LockConflict):
            bob.execute('Modify course(credits := 1 + credits)'
                        ' Where course-no = 1')
        alice.commit()
        bob.execute('Modify course(credits := 1 + credits)'
                    ' Where course-no = 1')
        bob.commit()
        assert db.query("From course Retrieve credits").scalar() == 5
