"""Multi-session concurrency tests: blocking 2PL, deadlock detection,
lock upgrades, and the legacy fail-fast mode (``lock_timeout=0``)."""

import threading
import time

import pytest

from repro import Database
from repro.engine.sessions import (
    DeadlockError,
    LockConflict,
    LockManager,
    LockTimeout,
    Session,
)
from repro.workloads import UNIVERSITY_DDL


@pytest.fixture()
def db():
    database = Database(UNIVERSITY_DDL, constraint_mode="off")
    database.execute('Insert course(course-no := 1, title := "T",'
                     ' credits := 3)')
    database.execute('Insert department(dept-nbr := 100, name := "D")')
    return database


def legacy_session(db):
    """Fail-fast, shared-lock-read sessions: the pre-MVCC semantics."""
    return Session(db, mvcc=False, lock_timeout=0)


class TestLockManager:
    def test_shared_locks_compatible(self):
        locks = LockManager()
        locks.acquire_shared(1, "course")
        locks.acquire_shared(2, "course")

    def test_exclusive_blocks_shared_failfast(self):
        locks = LockManager()
        locks.acquire_exclusive(1, "course")
        with pytest.raises(LockConflict):
            locks.acquire_shared(2, "course", timeout=0)

    def test_shared_blocks_exclusive_failfast(self):
        locks = LockManager()
        locks.acquire_shared(1, "course")
        with pytest.raises(LockConflict):
            locks.acquire_exclusive(2, "course", timeout=0)

    def test_upgrade_own_lock(self):
        locks = LockManager()
        assert locks.acquire_shared(1, "course") == "new"
        assert locks.acquire_exclusive(1, "course") == "upgraded"
        assert locks.holdings(1)["course"] == "exclusive"

    def test_reentrant_grants_are_held(self):
        locks = LockManager()
        locks.acquire_shared(1, "course")
        assert locks.acquire_shared(1, "course") == "held"
        locks.acquire_exclusive(1, "department")
        assert locks.acquire_exclusive(1, "department") == "held"
        # shared under own exclusive is already covered
        assert locks.acquire_shared(1, "department") == "held"

    def test_release_all(self):
        locks = LockManager()
        locks.acquire_exclusive(1, "course")
        locks.release_all(1)
        locks.acquire_exclusive(2, "course")

    def test_blocking_acquire_waits_for_release(self):
        locks = LockManager()
        locks.acquire_exclusive(1, "course")
        got = []

        def contender():
            got.append(locks.acquire_exclusive(2, "course", timeout=5.0))

        thread = threading.Thread(target=contender)
        thread.start()
        time.sleep(0.05)
        assert not got             # still blocked
        locks.release_all(1)
        thread.join(timeout=5.0)
        assert got == ["new"]
        assert locks.holdings(2)["course"] == "exclusive"

    def test_lock_timeout(self):
        locks = LockManager()
        locks.acquire_exclusive(1, "course")
        start = time.monotonic()
        with pytest.raises(LockTimeout):
            locks.acquire_exclusive(2, "course", timeout=0.2)
        assert time.monotonic() - start >= 0.15
        assert locks.statistics()["timeouts"] == 1

    def test_deadlock_detected_not_timed_out(self):
        """A 2-cycle is resolved by victim abort well before the (long)
        timeout, and the victim is the youngest session in the cycle."""
        locks = LockManager()
        locks.acquire_exclusive(1, "a")
        locks.acquire_exclusive(2, "b")
        results = {}

        def older():
            try:
                locks.acquire_exclusive(1, "b", timeout=30.0)
                results[1] = "granted"
            except DeadlockError:
                results[1] = "deadlock"
                locks.release_all(1)

        def younger():
            try:
                locks.acquire_exclusive(2, "a", timeout=30.0)
                results[2] = "granted"
            except DeadlockError:
                results[2] = "deadlock"
                locks.release_all(2)

        start = time.monotonic()
        threads = [threading.Thread(target=older),
                   threading.Thread(target=younger)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert time.monotonic() - start < 10.0   # no timeout-waiting
        assert results[2] == "deadlock"          # youngest loses...
        assert results[1] == "granted"           # ...and the cycle breaks
        assert locks.statistics()["deadlocks"] >= 1

    def test_deadlock_victim_deterministic(self):
        """The same interleaving always dooms the same (youngest)
        session, independent of which thread reaches detection first."""
        for _ in range(5):
            locks = LockManager()
            locks.acquire_exclusive(1, "a")
            locks.acquire_exclusive(2, "b")
            victims = []

            def contend(sid, want):
                try:
                    locks.acquire_exclusive(sid, want, timeout=30.0)
                except DeadlockError:
                    victims.append(sid)
                finally:
                    locks.release_all(sid)

            threads = [threading.Thread(target=contend, args=(1, "b")),
                       threading.Thread(target=contend, args=(2, "a"))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
            assert victims == [2]

    def test_upgrade_under_contention(self):
        """Two readers racing to upgrade form an upgrade deadlock; one is
        aborted, the other gets the exclusive lock."""
        locks = LockManager()
        locks.acquire_shared(1, "course")
        locks.acquire_shared(2, "course")
        outcome = {}

        def upgrade(sid):
            try:
                outcome[sid] = locks.acquire_exclusive(sid, "course",
                                                       timeout=30.0)
            except DeadlockError:
                outcome[sid] = "deadlock"
                locks.release_all(sid)

        threads = [threading.Thread(target=upgrade, args=(sid,))
                   for sid in (1, 2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert sorted(outcome.values()) == ["deadlock", "upgraded"]
        assert outcome[2] == "deadlock"          # youngest loses

    def test_rollback_drops_new_and_demotes_upgrades(self):
        locks = LockManager()
        locks.acquire_shared(1, "course")
        acquired = [("course", locks.acquire_exclusive(1, "course")),
                    ("department", locks.acquire_exclusive(1, "department"))]
        locks.rollback(1, acquired)
        # upgrade demoted back to shared; new lock fully released
        assert locks.holdings(1) == {"course": "shared"}
        locks.acquire_exclusive(2, "department", timeout=0)

    def test_rollback_keeps_preheld(self):
        locks = LockManager()
        locks.acquire_exclusive(1, "course")
        acquired = [("course", locks.acquire_exclusive(1, "course"))]
        assert acquired[0][1] == "held"
        locks.rollback(1, acquired)
        assert locks.holdings(1)["course"] == "exclusive"


class TestSessions:
    """Legacy fail-fast semantics (mvcc=False, lock_timeout=0)."""

    def test_writer_blocks_reader_until_commit(self, db):
        alice, bob = legacy_session(db), legacy_session(db)
        alice.execute('Modify course(credits := 5) Where course-no = 1')
        with pytest.raises(LockConflict):
            bob.query("From course Retrieve title")
        alice.commit()
        assert bob.query("From course Retrieve credits").scalar() == 5
        bob.commit()

    def test_readers_share(self, db):
        alice, bob = legacy_session(db), legacy_session(db)
        assert alice.query("From course Retrieve title").rows
        assert bob.query("From course Retrieve title").rows
        alice.commit()
        bob.commit()

    def test_reader_blocks_writer(self, db):
        alice, bob = legacy_session(db), legacy_session(db)
        alice.query("From course Retrieve title")
        with pytest.raises(LockConflict):
            bob.execute('Modify course(credits := 9) Where course-no = 1')
        alice.commit()
        bob.execute('Modify course(credits := 9) Where course-no = 1')
        bob.commit()

    def test_abort_isolates_other_session(self, db):
        alice, bob = legacy_session(db), legacy_session(db)
        alice.execute('Insert course(course-no := 2, title := "New",'
                      ' credits := 1)')
        alice.abort()
        titles = bob.query("From course Retrieve title").column(0)
        assert titles == ["T"]
        bob.commit()

    def test_two_open_transactions_commit_independently(self, db):
        alice, bob = legacy_session(db), legacy_session(db)
        alice.execute('Insert course(course-no := 2, title := "A2",'
                      ' credits := 1)')
        bob.execute('Insert department(dept-nbr := 200, name := "D2")')
        bob.commit()
        alice.commit()
        assert len(db.query("From course Retrieve title")) == 2
        assert len(db.query("From department Retrieve name")) == 2

    def test_disjoint_classes_do_not_conflict(self, db):
        alice, bob = legacy_session(db), legacy_session(db)
        alice.execute('Modify course(credits := 7) Where course-no = 1')
        bob.execute('Modify department(name := "D9")'
                    ' Where dept-nbr = 100')
        alice.commit()
        bob.commit()
        assert db.query("From course Retrieve credits").scalar() == 7
        assert db.query("From department Retrieve name").scalar() == "D9"

    def test_update_locks_cover_eva_partners(self, db):
        # Modifying students can touch courses (enrolment EVA): a reader
        # of COURSE must conflict with a student writer.
        alice, bob = legacy_session(db), legacy_session(db)
        alice.execute('Insert student(soc-sec-no := 1, courses-enrolled :='
                      ' course with (course-no = 1))')
        with pytest.raises(LockConflict):
            bob.query("From course Retrieve title")
        alice.commit()
        bob.commit()

    def test_holdings_reporting(self, db):
        alice = legacy_session(db)
        alice.query("From course Retrieve title")
        assert alice.holdings()["course"] == "shared"
        alice.commit()
        assert alice.holdings() == {}

    def test_serializable_outcome(self, db):
        """The classic lost-update interleaving is prevented outright."""
        alice, bob = legacy_session(db), legacy_session(db)
        alice.execute('Modify course(credits := 1 + credits)'
                      ' Where course-no = 1')
        with pytest.raises(LockConflict):
            bob.execute('Modify course(credits := 1 + credits)'
                        ' Where course-no = 1')
        alice.commit()
        bob.execute('Modify course(credits := 1 + credits)'
                    ' Where course-no = 1')
        bob.commit()
        assert db.query("From course Retrieve credits").scalar() == 5


class TestConcurrentSessions:
    """Threaded sessions: blocking waits, victim retry, satellite fixes."""

    def test_session_ids_per_database(self):
        db_a = Database(UNIVERSITY_DDL, constraint_mode="off")
        db_b = Database(UNIVERSITY_DDL, constraint_mode="off")
        assert Session(db_a).session_id == 1
        assert Session(db_a).session_id == 2
        assert Session(db_b).session_id == 1   # independent counters

    def test_session_id_allocation_thread_safe(self, db):
        ids = []
        ids_lock = threading.Lock()

        def open_sessions():
            for _ in range(50):
                session = Session(db)
                with ids_lock:
                    ids.append(session.session_id)

        threads = [threading.Thread(target=open_sessions) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len(ids) == len(set(ids)) == 200

    def test_begin_detached_mints_unique_txn_ids(self, db):
        manager = db.store.transactions
        txn_ids = []
        ids_lock = threading.Lock()

        def mint():
            for _ in range(100):
                txn = manager.begin_detached()
                with ids_lock:
                    txn_ids.append(txn.transaction_id)

        threads = [threading.Thread(target=mint) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len(txn_ids) == len(set(txn_ids)) == 400

    def test_writer_blocks_then_reader_proceeds(self, db):
        """A blocking (non-MVCC) reader waits out the writer instead of
        failing, and sees the committed value."""
        alice = Session(db, mvcc=False)
        bob = Session(db, mvcc=False)
        alice.execute('Modify course(credits := 5) Where course-no = 1')
        seen = []

        def read():
            seen.append(bob.query("From course Retrieve credits",
                                  timeout=10.0).scalar())
            bob.commit()

        thread = threading.Thread(target=read)
        thread.start()
        time.sleep(0.05)
        alice.commit()
        thread.join(timeout=10.0)
        assert seen == [5]

    def test_statement_timeout_keeps_transaction(self, db):
        """A timed-out statement fails but the session's transaction and
        earlier locks survive; partial acquisition is rolled back."""
        alice = Session(db, mvcc=False)
        bob = Session(db, mvcc=False)
        alice.execute('Modify course(credits := 5) Where course-no = 1')
        bob.execute('Modify department(name := "D2") Where dept-nbr = 100')
        with pytest.raises(LockTimeout):
            bob.execute('Modify course(credits := 9) Where course-no = 1',
                        timeout=0.2)
        # bob still holds the department write (IX class + entity X under
        # entity-granularity locking), but nothing on course
        assert bob.holdings() == {"department": "intention-exclusive"}
        assert list(bob.entity_holdings().values()) == ["exclusive"]
        assert not any(key[0] == "course" for key in bob.entity_holdings())
        alice.commit()
        bob.execute('Modify course(credits := 9) Where course-no = 1')
        bob.commit()
        assert db.query("From course Retrieve credits").scalar() == 9
        assert db.query("From department Retrieve name").scalar() == "D2"

    def test_deadlock_victim_statement_retried(self, db):
        """Fresh-transaction deadlock victims replay automatically: both
        opposite-order writers eventually commit."""
        barrier = threading.Barrier(2, timeout=10.0)
        errors = []

        def writer(first, second):
            session = Session(db)
            try:
                session.execute(f'Modify {first}(credits := 1 + credits)'
                                if first == "course" else
                                f'Modify {first}(name := "X")'
                                ' Where dept-nbr = 100')
                barrier.wait()
                session.execute(f'Modify {second}(credits := 1 + credits)'
                                if second == "course" else
                                f'Modify {second}(name := "Y")'
                                ' Where dept-nbr = 100')
                session.commit()
            except DeadlockError:
                session.abort()   # whole-transaction victim: caller retries
            except Exception as exc:   # pragma: no cover - diagnostic aid
                errors.append(exc)
                session.abort()

        threads = [
            threading.Thread(target=writer, args=("course", "department")),
            threading.Thread(target=writer, args=("department", "course")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert not any(thread.is_alive() for thread in threads)
        assert db._lock_manager.deadlocks >= 1

    def test_fresh_statement_deadlock_autoretries(self, db):
        """When the deadlocked statement is the transaction's first, the
        session replays it internally — the caller never sees the error."""
        results = []

        def writer(sid):
            session = Session(db)
            for _ in range(4):
                session.execute('Modify course(credits := 1 + credits)'
                                ' Where course-no = 1')
                session.commit()
            results.append(sid)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert sorted(results) == [0, 1, 2]
        # credits is range-typed 1..15: 3 + 3*4 = 15 exactly
        assert db.query("From course Retrieve credits").scalar() == 15

    def test_session_context_manager(self, db):
        with Session(db) as session:
            session.execute('Modify course(credits := 8) Where course-no = 1')
        assert db.query("From course Retrieve credits").scalar() == 8
        with pytest.raises(ValueError):
            with Session(db) as session:
                session.execute('Modify course(credits := 4)'
                                ' Where course-no = 1')
                raise ValueError("boom")
        assert db.query("From course Retrieve credits").scalar() == 8


class TestMultiGranularity:
    """The intention-lock matrix and entity-granular (two-level) keys."""

    def test_intention_modes_compatible(self):
        locks = LockManager()
        assert locks.acquire(1, "course", "IS")[0] == "new"
        assert locks.acquire(2, "course", "IX")[0] == "new"
        assert locks.acquire(3, "course", "IX")[0] == "new"
        assert locks.acquire(4, "course", "IS")[0] == "new"

    def test_is_compatible_with_shared_but_ix_is_not(self):
        locks = LockManager()
        locks.acquire(1, "course", "S")
        assert locks.acquire(2, "course", "IS")[0] == "new"
        with pytest.raises(LockConflict):
            locks.acquire(3, "course", "IX", timeout=0)

    def test_class_x_excludes_every_intention_mode(self):
        locks = LockManager()
        locks.acquire(1, "course", "X")
        for mode in ("IS", "IX", "S", "SIX", "X"):
            with pytest.raises(LockConflict):
                locks.acquire(2, "course", mode, timeout=0)

    def test_six_admits_only_is(self):
        locks = LockManager()
        locks.acquire(1, "course", "SIX")
        assert locks.acquire(2, "course", "IS")[0] == "new"
        for mode in ("IX", "S", "SIX", "X"):
            with pytest.raises(LockConflict):
                locks.acquire(3, "course", mode, timeout=0)

    def test_disjoint_entity_keys_do_not_conflict(self):
        locks = LockManager()
        locks.acquire(1, "course", "IX")
        locks.acquire(1, ("course", 7), "X")
        locks.acquire(2, "course", "IX")
        assert locks.acquire(2, ("course", 8), "X")[0] == "new"
        with pytest.raises(LockConflict):
            locks.acquire(2, ("course", 7), "X", timeout=0)

    def test_ix_and_s_combine_to_six(self):
        locks = LockManager()
        assert locks.acquire(1, "course", "IX") == ("new", None)
        assert locks.acquire(1, "course", "S") == ("upgraded", "IX")
        assert locks.holdings(1)["course"] == "shared-intention-exclusive"
        # SIX covers everything but X: further IS/IX/S are "held".
        assert locks.acquire(1, "course", "IX")[0] == "held"
        assert locks.acquire(1, "course", "S")[0] == "held"

    def test_entity_lock_upgrade_and_rollback_demotion(self):
        locks = LockManager()
        key = ("course", 3)
        locks.acquire(1, "course", "IX")
        assert locks.acquire(1, key, "S") == ("new", None)
        grant = locks.acquire(1, key, "X")
        assert grant == ("upgraded", "S")
        assert locks.entity_holdings(1) == {key: "exclusive"}
        # Partial-statement rollback with the 3-tuple record demotes the
        # upgrade back to exactly the mode held before.
        locks.rollback(1, [(key, *grant)])
        assert locks.entity_holdings(1) == {key: "shared"}

    def test_victim_determinism_on_entity_keys(self):
        """The same two-entity deadlock always dooms the youngest
        session when the cycle runs through (class, surrogate) keys."""
        for _ in range(5):
            locks = LockManager()
            key_a, key_b = ("account", 1), ("account", 2)
            locks.acquire(1, "account", "IX")
            locks.acquire(2, "account", "IX")
            locks.acquire(1, key_a, "X")
            locks.acquire(2, key_b, "X")
            victims = []

            def contend(sid, want):
                try:
                    locks.acquire(sid, want, "X", timeout=30.0)
                except DeadlockError:
                    victims.append(sid)
                finally:
                    locks.release_all(sid)

            threads = [threading.Thread(target=contend, args=(1, key_b)),
                       threading.Thread(target=contend, args=(2, key_a))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
            assert victims == [2]

    def test_release_all_prunes_entity_keys(self):
        """S3: the holder map stays bounded by live locks — hammering
        entity keys must not leave one empty husk per key ever locked."""
        locks = LockManager()
        for round_nbr in range(100):
            locks.acquire(1, "account", "IX")
            for surrogate in range(8):
                locks.acquire(1, ("account", round_nbr * 8 + surrogate), "X")
            locks.release_all(1)
            assert locks.statistics()["tracked_keys"] == 0
        assert locks._holders == {}

    def test_rollback_prunes_entity_keys(self):
        locks = LockManager()
        acquired = [("account", *locks.acquire(1, "account", "IX")),
                    (("account", 5), *locks.acquire(1, ("account", 5), "X"))]
        locks.rollback(1, acquired)
        assert locks.statistics()["tracked_keys"] == 0
        assert locks._holders == {}

    def test_statistics_count_entity_exclusives(self):
        locks = LockManager()
        locks.acquire(1, "account", "IX")
        locks.acquire(1, ("account", 1), "X")
        locks.acquire(2, "account", "IS")
        stats = locks.statistics()
        assert stats["entity_exclusive_held"] == 1
        assert stats["intention_held"] == 1
        assert stats["exclusive_held"] == 0
        assert stats["tracked_keys"] == 2


class TestEntityGranularSessions:
    """End-to-end entity-granularity behavior through Session."""

    def test_disjoint_entity_updates_overlap(self, db):
        db.execute('Insert course(course-no := 2, title := "U", credits := 1)')
        alice = Session(db)
        bob = Session(db)
        alice.execute('Modify course(credits := 7) Where course-no = 1')
        # Same class, different entity: bob is NOT blocked even fail-fast.
        bob.execute('Modify course(credits := 8) Where course-no = 2',
                    timeout=0)
        assert alice.holdings() == {"course": "intention-exclusive"}
        assert bob.holdings() == {"course": "intention-exclusive"}
        assert len(alice.entity_holdings()) == 1
        assert len(bob.entity_holdings()) == 1
        alice.commit()
        bob.commit()
        assert db.query('From course Retrieve credits'
                        ' Where course-no = 1').scalar() == 7
        assert db.query('From course Retrieve credits'
                        ' Where course-no = 2').scalar() == 8

    def test_same_entity_updates_conflict(self, db):
        alice = Session(db)
        bob = Session(db)
        alice.execute('Modify course(credits := 7) Where course-no = 1')
        with pytest.raises(LockConflict):
            bob.execute('Modify course(credits := 8) Where course-no = 1',
                        timeout=0)
        alice.commit()
        bob.commit()

    def test_insert_takes_class_exclusive(self, db):
        """Inserts are phantoms by construction: class-level X, which
        the entity writer's IX makes conflicting in both directions."""
        alice = Session(db)
        bob = Session(db)
        alice.execute('Insert course(course-no := 3, title := "V",'
                      ' credits := 2)')
        assert alice.holdings()["course"] == "exclusive"
        with pytest.raises(LockConflict):
            bob.execute('Modify course(credits := 8) Where course-no = 1',
                        timeout=0)
        alice.commit()
        bob.commit()

    def test_unqualified_modify_takes_class_exclusive(self, db):
        alice = Session(db)
        alice.execute('Modify course(credits := 6)')
        assert alice.holdings() == {"course": "exclusive"}
        assert alice.entity_holdings() == {}
        alice.commit()

    def test_entity_locks_off_restores_class_granularity(self, db):
        alice = Session(db, entity_locks=False)
        bob = Session(db, entity_locks=False)
        db.execute('Insert course(course-no := 2, title := "U", credits := 1)')
        alice.execute('Modify course(credits := 7) Where course-no = 1')
        assert alice.holdings() == {"course": "exclusive"}
        with pytest.raises(LockConflict):
            bob.execute('Modify course(credits := 8) Where course-no = 2',
                        timeout=0)
        alice.commit()
        bob.commit()

    def test_eva_assignment_falls_back_to_class_locks(self, db):
        """A Modify that writes an EVA touches the partner class too:
        it must keep the class-exclusive fallback on both sides."""
        alice = Session(db)
        alice.execute('Insert student(soc-sec-no := 9)')
        alice.commit()
        alice.execute('Modify student(courses-enrolled := course'
                      ' with (course-no = 1)) Where soc-sec-no = 9')
        holdings = alice.holdings()
        assert holdings["student"] == "exclusive"
        assert holdings["course"] == "exclusive"
        assert alice.entity_holdings() == {}
        alice.commit()


class TestSatelliteRegressions:
    """S1/S2: reads outside the write latch, racy lazy initialisation."""

    def test_shared_lock_reads_overlap_in_time(self, db):
        """S1: two non-MVCC shared-lock Retrieves must run concurrently
        — the read path takes no store-wide latch that would serialize
        their statement bodies."""
        intervals = []
        intervals_lock = threading.Lock()
        original = db._run_retrieve

        def slow_retrieve(query, **kwargs):
            start = time.monotonic()
            time.sleep(0.2)
            result = original(query, **kwargs)
            with intervals_lock:
                intervals.append((start, time.monotonic()))
            return result

        db._run_retrieve = slow_retrieve
        try:
            errors = []

            def read():
                try:
                    session = Session(db, mvcc=False)
                    assert session.query(
                        "From course Retrieve title").rows
                    session.commit()
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=read) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
        finally:
            db._run_retrieve = original
        assert errors == []
        assert len(intervals) == 2
        # Overlap: each started before the other finished.  A statement-
        # scope mutex would have made them strictly sequential.
        latest_start = max(start for start, _ in intervals)
        earliest_end = min(end for _, end in intervals)
        assert latest_start < earliest_end

    def test_lazy_init_race_installs_one_lock_manager(self):
        """S2: concurrent first Sessions over a bare database-like
        object (no eager wiring) must agree on ONE LockManager and
        mint unique session ids."""
        class Bare:
            pass

        for _ in range(20):
            bare = Bare()
            managers = []
            ids = []
            state_lock = threading.Lock()
            barrier = threading.Barrier(8, timeout=10.0)

            def construct():
                barrier.wait()
                session = Session(bare, mvcc=False)
                with state_lock:
                    managers.append(session.locks)
                    ids.append(session.session_id)

            threads = [threading.Thread(target=construct)
                       for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
            assert len(managers) == 8
            assert all(m is managers[0] for m in managers)
            assert managers[0] is bare._lock_manager
            assert sorted(ids) == list(range(1, 9))


@pytest.mark.lockdep
class TestLockdepIntegration:
    """Regressions for 2PL behavior under runtime lock-order checking
    (lockdep is on by default under pytest; these assert it stays
    silent and does not disturb the fail-fast path)."""

    def test_lock_timeout_zero_fail_fast_under_lockdep(self, db):
        from repro.engine import lockdep
        writer = Session(db)
        failfast = Session(db, lock_timeout=0)
        writer.execute('Modify course(credits := 4) Where course-no = 1')
        started = time.monotonic()
        with pytest.raises(LockConflict) as exc:
            failfast.execute(
                'Modify course(credits := 5) Where course-no = 1')
        elapsed = time.monotonic() - started
        # Fail-fast means *immediately*: no wait slice, no deadlock
        # search, and definitely not the 10s default timeout.
        assert not isinstance(exc.value, (LockTimeout, DeadlockError))
        assert elapsed < 0.5
        writer.commit()
        failfast.execute('Modify course(credits := 5) Where course-no = 1')
        failfast.commit()
        assert db.query("From course Retrieve credits").scalar() == 5
        assert lockdep.violations() == []

    def test_wait_slice_predicate_rechecks_before_grant(self, db):
        """The SIM304 fix: the condition wait re-evaluates its predicate
        under the lock, so a blocked writer wakes into a grant (not a
        stale-blockers loop) as soon as the holder commits."""
        from repro.engine import lockdep
        writer = Session(db)
        blocked = Session(db, lock_timeout=5.0)
        writer.execute('Modify course(credits := 6) Where course-no = 1')
        outcome = {}

        def contend():
            blocked.execute(
                'Modify course(credits := 7) Where course-no = 1')
            outcome["done"] = time.monotonic()
            blocked.commit()
        thread = threading.Thread(target=contend)
        thread.start()
        time.sleep(0.15)            # let it park in the wait
        released = time.monotonic()
        writer.commit()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        # Granted promptly after release: within a couple of wait
        # slices, not the full timeout.
        assert outcome["done"] - released < 1.0
        assert db.query("From course Retrieve credits").scalar() == 7
        assert lockdep.violations() == []
