"""Runtime lock-order validation (repro.engine.lockdep).

Covers the dynamic layer of the concurrency-correctness subsystem: rank
enforcement, acquisition-graph cycle detection, re-entrant RLock
accounting, warn-once edge dedup, and the enable/disable surface.  Every
test resets the global graph so intentional violations here never bleed
into the suite-wide clean-report assertion in conftest.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine import lockdep
from repro.engine.lockdep import (
    LockOrderViolation,
    RankedCondition,
    RankedLock,
)


@pytest.fixture(autouse=True)
def _fresh_graph():
    lockdep.reset()
    yield
    lockdep.reset()


def _lock(name: str) -> RankedLock:
    return RankedLock(name, check=True)


pytestmark = pytest.mark.lockdep


class TestRankRule:
    def test_descending_acquisition_is_clean(self):
        outer = _lock("store.unit_latch")       # rank 42
        inner = _lock("storage.buffer")         # rank 10
        with outer:
            with inner:
                pass
        assert lockdep.violations() == []

    def test_ascending_acquisition_raises(self):
        inner = _lock("storage.buffer")         # rank 10
        outer = _lock("store.unit_latch")       # rank 42
        with inner:
            with pytest.raises(LockOrderViolation) as exc:
                outer.acquire()
        assert "rank" in str(exc.value)
        assert lockdep.violations() != []

    def test_equal_rank_two_instances_raises(self):
        # Two distinct unit latches share rank 42: nesting them is the
        # latch-discipline bug the leaf-per-operation rule forbids, and
        # the equal-rank rule is its runtime enforcement.
        first = _lock("store.unit_latch")
        second = _lock("store.unit_latch")
        with first:
            with pytest.raises(LockOrderViolation):
                second.acquire()

    def test_violation_does_not_take_the_lock(self):
        inner = _lock("storage.buffer")
        outer = _lock("store.unit_latch")
        with inner:
            with pytest.raises(LockOrderViolation):
                outer.acquire()
        # The failed acquisition must not have been granted: another
        # thread can take it immediately.
        grabbed = []

        def worker():
            grabbed.append(outer.acquire(timeout=1.0))
            outer.release()
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=2.0)
        assert grabbed == [True]

    def test_warn_once_per_edge(self):
        inner = _lock("storage.buffer")
        outer = _lock("store.unit_latch")
        with inner:
            with pytest.raises(LockOrderViolation):
                outer.acquire()
            # Same edge again: recorded once, not raised again.
            outer.acquire()
            outer.release()
        assert len(lockdep.violations()) == 1

    def test_full_hierarchy_descends_clean(self):
        names = ["server.client", "server.gate", "server.connections",
                 "storage.transactions", "sessions.class_locks",
                 "store.unit_latch", "store.surrogates",
                 "store.commit_latch", "mapper.versions",
                 "mapper.read_cache", "storage.buffer", "storage.wal"]
        locks = [_lock(name) for name in names]
        for lock in locks:
            lock.acquire()
        for lock in reversed(locks):
            lock.release()
        assert lockdep.violations() == []


class TestCycleRule:
    def test_cycle_between_unranked_locks_raises(self):
        alpha = _lock("test.alpha")
        beta = _lock("test.beta")
        with alpha:
            with beta:
                pass
        with beta:
            with pytest.raises(LockOrderViolation) as exc:
                alpha.acquire()
        assert "cycle" in str(exc.value)

    def test_three_lock_cycle_detected(self):
        a, b, c = _lock("test.a"), _lock("test.b"), _lock("test.c")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with pytest.raises(LockOrderViolation):
                a.acquire()

    def test_consistent_order_never_raises(self):
        alpha = _lock("test.alpha")
        beta = _lock("test.beta")
        for _ in range(3):
            with alpha:
                with beta:
                    pass
        assert lockdep.violations() == []

    def test_edges_recorded(self):
        alpha = _lock("test.alpha")
        beta = _lock("test.beta")
        with alpha:
            with beta:
                pass
        assert ("test.alpha", "test.beta") in lockdep.edges()


class TestReentrancy:
    def test_reentrant_reacquisition_is_clean(self):
        lock = _lock("store.unit_latch")
        with lock:
            with lock:
                with lock:
                    pass
        assert lockdep.violations() == []

    def test_reentrant_release_keeps_outer_entry(self):
        outer = _lock("store.unit_latch")
        inner = _lock("storage.buffer")
        with outer:
            with outer:
                pass
            # The outer hold must still be tracked: acquiring a
            # higher-ranked lock now is still a violation.
            bad = _lock("sessions.class_locks")
            with pytest.raises(LockOrderViolation):
                bad.acquire()
            with inner:     # descending is still fine
                pass

    def test_unranked_same_class_records_no_self_edge(self):
        # Unranked same-class nesting: the class-keyed graph records no
        # self-edge (it carries no ordering information), so this stays
        # clean — only *ranked* same-class nesting is rejected, by the
        # equal-rank rule above.
        first = _lock("test.pool")
        second = _lock("test.pool")
        with first:
            with second:
                pass
        assert ("test.pool", "test.pool") not in lockdep.edges()
        assert lockdep.violations() == []


class TestConditions:
    def test_condition_wait_for_roundtrip(self):
        lock = _lock("sessions.class_locks")
        cond = RankedCondition(lock)
        fired = []

        def waker():
            with cond:
                fired.append(True)
                cond.notify_all()
        thread = threading.Thread(target=waker)
        with cond:
            thread.start()
            assert cond.wait_for(lambda: fired, timeout=2.0)
        thread.join(timeout=2.0)
        assert lockdep.violations() == []

    def test_condition_holds_locks_rank(self):
        lock = _lock("sessions.class_locks")    # rank 50
        cond = RankedCondition(lock)
        higher = _lock("storage.transactions")  # rank 60
        with cond:
            with pytest.raises(LockOrderViolation):
                higher.acquire()


class TestEnableSurface:
    def test_default_on_under_pytest(self):
        assert lockdep.enabled()
        assert RankedLock("test.default")._check

    def test_disable_enable_roundtrip(self):
        lockdep.disable()
        try:
            assert not lockdep.enabled()
            unchecked = RankedLock("storage.buffer")
            checked_outer = _lock("store.unit_latch")
            # An unchecked lock neither checks nor records.
            with unchecked:
                with checked_outer:
                    pass
        finally:
            lockdep.enable()
        assert lockdep.enabled()
        assert lockdep.violations() == []

    def test_unchecked_lock_is_plain_rlock(self):
        lock = RankedLock("storage.buffer", check=False)
        assert lock.acquire()
        assert lock.acquire()
        lock.release()
        lock.release()
        assert lockdep.violations() == []

    def test_reset_clears_state(self):
        inner = _lock("storage.buffer")
        outer = _lock("store.unit_latch")
        with inner:
            with pytest.raises(LockOrderViolation):
                outer.acquire()
        lockdep.reset()
        assert lockdep.violations() == []
        assert lockdep.edges() == set()


class TestEngineIntegration:
    def test_migrated_locks_are_ranked(self):
        from repro import Database
        from repro.workloads import UNIVERSITY_DDL
        db = Database(UNIVERSITY_DDL, constraint_mode="off")
        assert db.store.commit_latch.name == "store.commit_latch"
        assert db.store._surrogate_mutex.name == "store.surrogates"
        assert db.store.versions._mutex.name == "mapper.versions"
        assert db.store.read_cache._lock.name == "mapper.read_cache"
        assert db.store.transactions._mutex.name == "storage.transactions"

    def test_update_workload_records_descending_edges_only(self):
        from repro import Database
        from repro.workloads import UNIVERSITY_DDL
        lockdep.reset()
        db = Database(UNIVERSITY_DDL, constraint_mode="off")
        db.execute('Insert course(course-no := 1, title := "T",'
                   ' credits := 3)')
        db.execute('Modify course(credits := 4) Where course-no = 1')
        db.execute('Delete course Where course-no = 1')
        from repro.analysis.lock_order import LOCK_RANKS
        for held, acquired in lockdep.edges():
            held_rank = LOCK_RANKS.get(held)
            acquired_rank = LOCK_RANKS.get(acquired)
            if held_rank is not None and acquired_rank is not None:
                assert acquired_rank < held_rank, (held, acquired)
        assert lockdep.violations() == []
