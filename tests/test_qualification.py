"""Qualification and binding tests (paper §4.2, §4.4): anchoring, shorthand
completion, AS conversion, scopes, and TYPE labelling."""

import pytest

from repro import parse_dml, parse_expression
from repro.errors import QualificationError
from repro.dml.qualification import Qualifier
from repro.dml.query_tree import TYPE1, TYPE2, TYPE3


@pytest.fixture()
def qualifier(university_schema):
    return Qualifier(university_schema)


def resolve(qualifier, text):
    query = parse_dml(text)
    tree = qualifier.resolve_retrieve(query)
    return query, tree


class TestAnchoring:
    def test_perspective_name_anchor(self, qualifier):
        query, tree = resolve(qualifier,
                              "From Student Retrieve Name of Student")
        path = query.targets[0].expression
        assert path.anchor_node is tree.roots[0]
        assert path.terminal_attr.name == "name"

    def test_explicit_variable_anchor(self, qualifier):
        query, tree = resolve(qualifier, "From student s Retrieve name of s")
        assert query.targets[0].expression.anchor_node.var_name == "s"

    def test_inherited_attribute_usable(self, qualifier):
        query, _ = resolve(qualifier,
                           "From Student Retrieve Birthdate of Student")
        assert query.targets[0].expression.terminal_attr.owner_name == \
            "person"

    def test_perspective_inference(self, qualifier):
        query, _ = resolve(qualifier, "Retrieve Name of Student")
        assert [p.class_name for p in query.perspectives] == ["student"]

    def test_inference_failure(self, qualifier):
        with pytest.raises(QualificationError):
            resolve(qualifier, "Retrieve Name")


class TestShorthand:
    def test_depth_zero_completion(self, qualifier):
        query, tree = resolve(qualifier, "From Student Retrieve Name")
        assert query.targets[0].expression.anchor_node is tree.roots[0]

    def test_paper_salary_example(self, qualifier):
        # §4.2: with STUDENT as perspective, "Salary" completes to
        # "salary of advisor of student".
        query, _ = resolve(qualifier, "From Student Retrieve Salary")
        path = query.targets[0].expression
        assert path.chain_nodes[0].eva.name == "advisor"
        assert path.terminal_attr.name == "salary"

    def test_partial_chain_completion(self, qualifier):
        # "name of major-department of advisees" from instructor.
        query, _ = resolve(
            qualifier,
            'From instructor Retrieve name of major-department of advisees')
        chain = query.targets[0].expression.chain_nodes
        assert [n.eva.name for n in chain] == ["advisees",
                                               "major-department"]

    def test_ambiguous_shorthand_rejected(self, qualifier):
        # NAME resolves on both perspectives.
        with pytest.raises(QualificationError, match="ambiguous"):
            resolve(qualifier, "From student, instructor Retrieve Name")

    def test_unresolvable_shorthand(self, qualifier):
        with pytest.raises(QualificationError):
            resolve(qualifier, "From department Retrieve teaching-load")


class TestBinding:
    def test_identical_qualifications_share_node(self, qualifier):
        query, tree = resolve(qualifier, """
            Retrieve Title of Courses-Enrolled of Student,
                     Credits of Courses-Enrolled of Student""")
        first = query.targets[0].expression.chain_nodes[0]
        second = query.targets[1].expression.chain_nodes[0]
        assert first is second

    def test_distinct_qualifications_get_distinct_nodes(self, qualifier):
        query, _ = resolve(qualifier, """
            From course Retrieve title of prerequisites,
                 title of prerequisite-of""")
        first = query.targets[0].expression.chain_nodes[0]
        second = query.targets[1].expression.chain_nodes[0]
        assert first is not second

    def test_as_conversion_distinct_node(self, qualifier):
        query, _ = resolve(qualifier, """
            From Student Retrieve name of spouse,
                 student-nbr of spouse as student""")
        plain = query.targets[0].expression.chain_nodes[0]
        converted = query.targets[1].expression.chain_nodes[0]
        assert plain is not converted
        assert converted.class_name == "student"

    def test_cross_hierarchy_as_rejected(self, qualifier):
        with pytest.raises(QualificationError):
            resolve(qualifier,
                    "From Student Retrieve title of Student as Course")

    def test_aggregate_breaks_binding(self, qualifier):
        # Inside the aggregate, "instructor" is a fresh universal variable,
        # not the perspective variable.
        query, tree = resolve(
            qualifier,
            "From instructor Retrieve name, avg(salary of instructor)")
        aggregate = query.targets[1].expression
        scope_root = aggregate.scope_nodes[0]
        assert scope_root.kind == "root"
        assert scope_root is not tree.roots[0]

    def test_aggregate_outer_correlates(self, qualifier):
        query, tree = resolve(
            qualifier,
            "From instructor Retrieve count(courses-taught) of instructor")
        aggregate = query.targets[0].expression
        assert aggregate.anchor_node is tree.roots[0]
        assert aggregate.scope_nodes[0].eva.name == "courses-taught"

    def test_quantifier_scope_correlated_via_shorthand(self, qualifier):
        expr = parse_expression(
            "assigned-department neq some(major-department of advisees)")
        tree = qualifier.resolve_selection("instructor", expr)
        quantified = expr.right
        advisees_node = quantified.scope_nodes[0]
        assert advisees_node.parent is tree.roots[0]
        assert advisees_node.scope_id != 0


class TestLabels:
    def test_paper_labelling_example(self, qualifier):
        # Example 6: courses-taught only in target (TYPE 3); advisees and
        # major-department only in selection (TYPE 2).
        _, tree = resolve(qualifier, """
            Retrieve name of instructor, title of courses-taught
            Where name of major-department of advisees = "Physics" """)
        root = tree.roots[0]
        labels = {child.eva.name: child.label
                  for child in root.children.values()}
        assert labels["courses-taught"] == TYPE3
        assert labels["advisees"] == TYPE2
        nested = list(root.children.values())
        advisees = next(c for c in nested if c.eva.name == "advisees")
        major = next(iter(advisees.children.values()))
        assert major.label == TYPE2

    def test_node_in_both_lists_is_type1(self, qualifier):
        _, tree = resolve(qualifier, """
            From student Retrieve title of courses-enrolled
            Where credits of courses-enrolled > 2""")
        child = next(iter(tree.roots[0].children.values()))
        assert child.label == TYPE1

    def test_root_always_type1(self, qualifier):
        _, tree = resolve(qualifier, "From student Retrieve name")
        assert tree.roots[0].label == TYPE1

    def test_loop_nodes_depth_first(self, qualifier):
        _, tree = resolve(qualifier, """
            Retrieve Name of Student,
                     Title of Courses-Enrolled of Student,
                     Name of Teachers of Courses-Enrolled of Student""")
        nodes = tree.loop_nodes(tree.roots[0])
        names = [n.var_name or (n.eva.name if n.kind == "eva" else "?")
                 for n in nodes]
        assert names == ["student", "courses-enrolled", "teachers"]

    def test_mv_dva_gets_range_variable(self, qualifier):
        _, tree = resolve(qualifier, "From person Retrieve name, profession")
        children = list(tree.roots[0].children.values())
        assert children and children[0].kind == "mvdva"
        assert children[0].label == TYPE3
