"""Workload tests: UNIVERSITY population invariants (E1) and the
ADDS-scale schema (E3)."""

import pytest

from repro import Database
from repro.workloads import (
    ADDS_TARGET,
    UNIVERSITY_DDL,
    build_adds_schema,
    build_university,
    fanout_schema,
    hierarchy_chain_schema,
    populate_fanout,
    populate_hierarchy_chain,
)


class TestUniversityPopulation:
    def test_requested_sizes(self, university):
        assert university.store.class_count("student") == 40
        assert university.store.class_count("instructor") >= 10  # + TAs
        assert university.store.class_count("course") == 20
        assert university.store.class_count("department") == 4

    def test_deterministic_for_seed(self):
        first = build_university(students=10, instructors=4, courses=8,
                                 seed=3)
        second = build_university(students=10, instructors=4, courses=8,
                                  seed=3)
        assert first.query("From person Retrieve name, soc-sec-no").rows == \
            second.query("From person Retrieve name, soc-sec-no").rows

    def test_advisor_limit_respected(self, university):
        rows = university.query(
            "From instructor Retrieve count(advisees) of instructor").rows
        assert all(row[0] <= 10 for row in rows)

    def test_course_load_limit_respected(self, university):
        rows = university.query(
            "From instructor Retrieve count(courses-taught) of"
            " instructor").rows
        assert all(row[0] <= 3 for row in rows)

    def test_population_satisfies_v1(self, university):
        rows = university.query(
            "From student Retrieve sum(credits of courses-enrolled) of"
            " student").rows
        assert all(row[0] >= 12 for row in rows)

    def test_population_satisfies_v2(self, university):
        rows = university.query(
            "From instructor Retrieve salary + bonus").rows
        from repro.types.tvl import is_null
        assert all(is_null(row[0]) or row[0] < 100000 for row in rows)

    def test_buildable_with_constraints_on(self):
        db = build_university(students=8, instructors=4, courses=10,
                              constraint_mode="immediate", seed=5)
        assert db.store.class_count("student") == 8

    def test_teaching_assistants_hold_all_roles(self, university):
        rows = university.query(
            "From teaching-assistant Retrieve profession").rows
        professions = {r[0] for r in rows}
        assert professions == {"student", "instructor"}

    def test_prerequisites_are_acyclic(self, university):
        # Transitive closure from any course never includes itself.
        titles = university.query("From course Retrieve title").column(0)
        for title in titles[:5]:
            closure = university.query(
                f'Retrieve title of transitive(prerequisites) of course'
                f' Where title of course = "{title}"').column(0)
            assert title not in closure

    def test_spouse_symmetry(self, university):
        rows = university.query(
            "From person Retrieve name, name of spouse").rows
        by_name = dict(rows)
        from repro.types.tvl import is_null
        for name, spouse in rows:
            if not is_null(spouse):
                assert by_name.get(spouse) == name


class TestAddsScale:
    def test_exact_published_statistics(self):
        schema = build_adds_schema()
        assert schema.statistics() == ADDS_TARGET

    def test_store_builds_at_scale(self):
        from repro.mapper import MapperStore
        store = MapperStore(build_adds_schema())
        deep = "dict-deep4"
        surrogate = store.insert_entity(deep)
        assert len(store.roles_of(surrogate, "dict-base00")) == 5

    def test_deterministic(self):
        first = build_adds_schema(seed=1988)
        second = build_adds_schema(seed=1988)
        assert first.class_names() == second.class_names()


class TestSyntheticGenerators:
    def test_fanout_population_shape(self):
        db = Database(fanout_schema(), constraint_mode="off")
        owners, members = populate_fanout(db, owners=5, fanout=7)
        assert len(owners) == 5 and len(members) == 35
        counts = db.query(
            "From owner Retrieve count(members) of owner").column(0)
        assert counts == [7] * 5

    def test_hierarchy_chain_roles(self):
        db = Database(hierarchy_chain_schema(5), constraint_mode="off")
        surrogates = populate_hierarchy_chain(db, 5, 3)
        assert db.store.roles_of(surrogates[0], "level0") == [
            f"level{k}" for k in range(5)]
        row = db.query("From level4 Retrieve data0, data4"
                       " Where key0 = 1").rows[0]
        assert "level 0" in row[0] and "level 4" in row[1]
