"""Golden tests for simcheck (repro.analysis): one per SIM*** rule.

Every rule is exercised with a minimal reproducer and checked for its
code, severity, span and message — plus the clean-sweep guarantees: the
UNIVERSITY schema and its canonical workload produce zero errors and
zero warnings, and the plan verifier is green for every query form.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.analysis import (
    ERROR,
    INFO,
    RULES,
    WARNING,
    lint_retrieve,
    lint_schema,
    lint_update,
    verify_plan,
)
from repro.dml.parser import parse_dml
from repro.dml.query_tree import TYPE1, TYPE2, TYPE3
from repro.errors import (
    IntegrityError,
    PlanVerificationError,
    QualificationError,
    StaticAnalysisError,
    StaticTypeError,
    StaticUpdateError,
    TypeMismatchError,
)
from repro.optimizer.plan import AccessPath, Plan
from repro.workloads import UNIVERSITY_DDL
from repro.workloads.university import UNIVERSITY_QUERIES


def codes(diagnostics):
    return [d.code for d in diagnostics]


def find(diagnostics, code):
    matching = [d for d in diagnostics if d.code == code]
    assert matching, f"expected {code} in {codes(diagnostics)}"
    return matching[0]


def assert_none_of_severity(diagnostics, severity):
    offending = [d for d in diagnostics if d.severity == severity]
    assert not offending, [d.describe() for d in offending]


# -- Rule catalog ----------------------------------------------------------------


class TestCatalog:
    def test_codes_are_stable_and_well_formed(self):
        for code, rule in RULES.items():
            assert code == rule.code
            assert code.startswith("SIM") and code[3:].isdigit()
            assert rule.severity in (ERROR, WARNING, INFO)
            assert rule.title

    def test_severity_defaults_from_catalog(self):
        diagnostics = lint_schema("Type unused = integer (1..2);\n"
                                  "Class a ( x: integer );")
        note = find(diagnostics, "SIM040")
        assert note.severity == INFO
        assert note.rule.title == "named type is never used"


# -- Schema lint (SIM0xx) --------------------------------------------------------


class TestSchemaLint:
    def test_sim000_ddl_syntax_error(self):
        diagnostics = lint_schema("Class a ( x integer );")
        diagnostic = find(diagnostics, "SIM000")
        assert diagnostic.severity == ERROR

    def test_sim001_unknown_superclass(self):
        diagnostics = lint_schema("Subclass b of missing ( y: integer );")
        diagnostic = find(diagnostics, "SIM001")
        assert "missing" in diagnostic.message
        assert diagnostic.span.line == 1

    def test_sim002_generalization_cycle(self):
        diagnostics = lint_schema(
            "Subclass a of b ( x: integer );\n"
            "Subclass b of a ( y: integer );")
        assert "SIM002" in codes(diagnostics)

    def test_sim003_multiple_base_ancestors(self):
        diagnostics = lint_schema(
            "Class a ( x: integer );\n"
            "Class b ( y: integer );\n"
            "Subclass c of a and b ( z: integer );")
        diagnostic = find(diagnostics, "SIM003")
        assert "'c'" in diagnostic.message

    def test_diamond_over_one_base_is_legal(self):
        # The Teaching-Assistant pattern: two superclasses, one base.
        diagnostics = lint_schema(UNIVERSITY_DDL)
        assert "SIM003" not in codes(diagnostics)

    def test_sim010_unknown_range_class(self):
        diagnostics = lint_schema(
            "Class a ( friend: missing inverse is pal );")
        diagnostic = find(diagnostics, "SIM010")
        assert "missing" in diagnostic.message

    def test_sim011_missing_inverse_is_info(self):
        diagnostics = lint_schema(
            "Class a ( friend: b );\nClass b ( x: integer );")
        diagnostic = find(diagnostics, "SIM011")
        assert diagnostic.severity == INFO
        assert diagnostic.hint

    def test_sim012_one_sided_inverse(self):
        diagnostics = lint_schema(
            "Class a ( friend: b inverse is pal );\n"
            "Class b ( x: integer );")
        diagnostic = find(diagnostics, "SIM012")
        assert diagnostic.severity == WARNING

    def test_sim013_non_mutual_inverse(self):
        diagnostics = lint_schema(
            "Class a ( f1: b inverse is g; f2: b inverse is g );\n"
            "Class b ( g: a inverse is f1 );")
        diagnostic = find(diagnostics, "SIM013")
        assert "f2" in diagnostic.message

    def test_sim014_inverse_range_disagrees(self):
        diagnostics = lint_schema(
            "Class a ( friend: b inverse is pal );\n"
            "Class b ( pal: c inverse is friend );\n"
            "Class c ( x: integer );")
        assert "SIM014" in codes(diagnostics)

    def test_sim015_inverse_is_not_an_eva(self):
        diagnostics = lint_schema(
            "Class a ( friend: b inverse is tag );\n"
            "Class b ( tag: integer );")
        diagnostic = find(diagnostics, "SIM015")
        assert "tag" in diagnostic.message

    def test_sim016_required_on_both_directions(self):
        diagnostics = lint_schema(
            "Class a ( friend: b inverse is pal required );\n"
            "Class b ( pal: a inverse is friend required );")
        matching = [d for d in diagnostics if d.code == "SIM016"]
        assert len(matching) == 1     # reported once per pair, not per side

    def test_sim016_reflexive_required(self):
        diagnostics = lint_schema(
            "Class a ( spouse: a inverse is spouse required );")
        diagnostic = find(diagnostics, "SIM016")
        assert "first entity" in diagnostic.message

    def test_sim020_attribute_shadowing(self):
        diagnostics = lint_schema(
            "Class a ( x: integer );\n"
            "Subclass b of a ( x: string[5] );")
        diagnostic = find(diagnostics, "SIM020")
        assert diagnostic.span.line == 2

    def test_sim021_subrole_value_set_mismatch(self):
        diagnostics = lint_schema(
            "Class a ( role: subrole (b, missing) );\n"
            "Subclass b of a ( y: integer );")
        assert "SIM021" in codes(diagnostics)

    def test_sim022_two_subrole_attributes(self):
        diagnostics = lint_schema(
            "Class a ( r1: subrole (b); r2: subrole (b) );\n"
            "Subclass b of a ( y: integer );")
        assert "SIM022" in codes(diagnostics)

    def test_sim030_vacuous_verify(self):
        diagnostics = lint_schema(
            "Class a ( x: integer );\n"
            'Verify v on a assert 1 < 2 else "always";')
        diagnostic = find(diagnostics, "SIM030")
        assert diagnostic.severity == WARNING

    def test_sim031_verify_undeclared_attribute(self):
        diagnostics = lint_schema(
            "Class a ( x: integer );\n"
            'Verify v on a assert nosuch > 1 else "bad";')
        assert "SIM031" in codes(diagnostics)

    def test_sim032_verify_unknown_class(self):
        diagnostics = lint_schema(
            "Class a ( x: integer );\n"
            'Verify v on missing assert x > 1 else "bad";')
        assert "SIM032" in codes(diagnostics)

    def test_sim033_verify_assertion_parse_error(self):
        diagnostics = lint_schema(
            "Class a ( x: integer );\n"
            'Verify v on a assert x > > 1 else "bad";')
        diagnostic = find(diagnostics, "SIM033")
        assert diagnostic.span.line == 2    # rebased onto the declaration

    def test_sim040_unused_type(self):
        diagnostics = lint_schema(
            "Type shade = symbolic (red, blue);\n"
            "Class a ( x: integer );")
        diagnostic = find(diagnostics, "SIM040")
        assert "shade" in diagnostic.message
        assert diagnostic.span.line == 1

    def test_accepts_resolved_schema_objects(self):
        database = Database(UNIVERSITY_DDL)
        diagnostics = lint_schema(database.schema)
        assert_none_of_severity(diagnostics, ERROR)

    def test_university_schema_lints_clean(self):
        diagnostics = lint_schema(UNIVERSITY_DDL)
        assert_none_of_severity(diagnostics, ERROR)
        assert_none_of_severity(diagnostics, WARNING)


# -- Query lint (SIM10x / SIM11x) ------------------------------------------------


@pytest.fixture(scope="module")
def db():
    return Database(UNIVERSITY_DDL, constraint_mode="off")


class TestQualificationCodes:
    """Qualification failures carry their SIM10x code on the exception."""

    def test_sim101_unknown_attribute(self, db):
        with pytest.raises(QualificationError) as exc:
            db.compile("From student Retrieve nosuch")
        assert exc.value.diagnostic_code == "SIM101"

    def test_sim102_ambiguous_shorthand(self):
        database = Database(
            "Class a ( f: b inverse is f-of; g: b inverse is g-of );\n"
            "Class b ( x: integer; f-of: a inverse is f;"
            " g-of: a inverse is g );")
        with pytest.raises(QualificationError) as exc:
            database.compile("From a Retrieve x")    # via f or via g?
        assert exc.value.diagnostic_code == "SIM102"

    def test_sim104_no_perspective_inferable(self, db):
        with pytest.raises(QualificationError) as exc:
            db.compile("Retrieve name")     # person vs department vs course
        assert exc.value.diagnostic_code == "SIM104"

    def test_sim103_as_crosses_hierarchies(self, db):
        with pytest.raises(QualificationError) as exc:
            db.compile("From student Retrieve name of spouse as department")
        assert exc.value.diagnostic_code == "SIM103"

    def test_sim104_unknown_perspective(self, db):
        with pytest.raises(QualificationError) as exc:
            db.compile("From nosuch Retrieve name")
        assert exc.value.diagnostic_code == "SIM104"


class TestTypeRules:
    def test_sim110_entity_vs_value_comparison(self, db):
        with pytest.raises(StaticTypeError) as exc:
            db.compile("From student Retrieve name Where advisor > 3")
        assert exc.value.diagnostic_code == "SIM110"
        # compatibility: existing handlers catching the runtime type error
        assert isinstance(exc.value, TypeMismatchError)

    def test_sim111_mv_attribute_in_arithmetic_warns(self):
        database = Database(
            "Class team ( name: string[10]; scores: integer mv );")
        compiled = database.compile(
            "From team Retrieve name Where scores + 1 > 3")
        diagnostic = find(compiled.diagnostics, "SIM111")
        assert diagnostic.severity == WARNING

    def test_sim112_incomparable_families(self, db):
        with pytest.raises(StaticTypeError) as exc:
            db.compile("From student Retrieve name Where name > 3")
        assert exc.value.diagnostic_code == "SIM112"

    def test_sim112_like_on_numbers(self, db):
        with pytest.raises(StaticTypeError) as exc:
            db.compile('From instructor Retrieve name '
                       'Where salary like "5%"')
        assert "LIKE" in str(exc.value)

    def test_sim113_literal_outside_domain_warns(self, db):
        compiled = db.compile(
            "From course Retrieve title Where credits = 99")
        diagnostic = find(compiled.diagnostics, "SIM113")
        assert diagnostic.severity == WARNING
        assert "never be true" in diagnostic.message

    def test_sim114_sum_over_entities(self, db):
        with pytest.raises(StaticTypeError) as exc:
            db.compile("From instructor Retrieve sum(advisees)")
        assert exc.value.diagnostic_code == "SIM114"

    def test_sim114_sum_over_strings(self, db):
        with pytest.raises(StaticTypeError) as exc:
            db.compile("From student Retrieve sum(name)")
        assert exc.value.diagnostic_code == "SIM114"

    def test_sim115_vacuous_quantifier_warns(self, db):
        compiled = db.compile(
            "From instructor Retrieve name Where salary = some(3)")
        diagnostic = find(compiled.diagnostics, "SIM115")
        assert diagnostic.severity == WARNING

    def test_sim116_aggregate_over_constant_warns(self, db):
        compiled = db.compile("From student Retrieve count(3)")
        diagnostic = find(compiled.diagnostics, "SIM116")
        assert diagnostic.severity == WARNING

    def test_sim117_non_boolean_selection(self, db):
        with pytest.raises(StaticTypeError) as exc:
            db.compile("From instructor Retrieve name Where salary")
        assert "not boolean" in str(exc.value)

    def test_error_carries_full_diagnostics_list(self, db):
        with pytest.raises(StaticAnalysisError) as exc:
            db.compile("From student Retrieve name Where advisor > 3")
        assert codes(exc.value.diagnostics) == ["SIM110"]
        assert exc.value.diagnostics[0].span.line == 1

    def test_valid_queries_produce_no_diagnostics(self, db):
        compiled = db.compile(
            "From student Retrieve name, name of advisor "
            "Where credits of courses-enrolled > 3")
        assert compiled.diagnostics == []
        assert compiled.tree is not None and compiled.plan is not None


class TestUpdateRules:
    def test_sim120_unknown_attribute(self, db):
        with pytest.raises(StaticUpdateError) as exc:
            db.compile("Modify student(nosuch := 1) Where student-nbr = 1")
        assert exc.value.diagnostic_code == "SIM120"
        assert isinstance(exc.value, IntegrityError)

    def test_sim121_system_maintained_subrole(self, db):
        with pytest.raises(StaticUpdateError) as exc:
            db.compile('Modify person(profession := "student") '
                       'Where name = "x"')
        assert exc.value.diagnostic_code == "SIM121"

    def test_sim121_derived_attribute(self):
        database = Database(
            "Class worker ( pay: number[9,2]; extra: number[9,2] );\n"
            "Derive compensation on worker as pay + extra;")
        with pytest.raises(StaticUpdateError) as exc:
            database.compile("Modify worker(compensation := 1) "
                             "Where pay > 0")
        assert exc.value.diagnostic_code == "SIM121"
        assert "computed" in str(exc.value)

    def test_sim122_include_on_single_valued_dva(self, db):
        with pytest.raises(StaticUpdateError) as exc:
            db.compile("Modify instructor(salary := include 5) "
                       "Where employee-nbr = 1001")
        assert exc.value.diagnostic_code == "SIM122"

    def test_exclude_on_single_valued_eva_is_legal(self, db):
        compiled = db.compile("Modify student(advisor := exclude advisor) "
                              "Where student-nbr = 2001")
        assert_none_of_severity(compiled.diagnostics, ERROR)

    def test_sim123_eva_assigned_a_literal(self, db):
        with pytest.raises(StaticUpdateError) as exc:
            db.compile('Modify student(advisor := 5) Where name = "x"')
        assert "WITH selector" in str(exc.value)

    def test_sim123_dva_assigned_a_selector(self, db):
        with pytest.raises(StaticUpdateError) as exc:
            db.compile("Modify instructor"
                       "(salary := instructor with (salary > 0)) "
                       "Where employee-nbr = 1001")
        assert exc.value.diagnostic_code == "SIM123"

    def test_sim124_selector_outside_eva_range(self, db):
        with pytest.raises(StaticUpdateError) as exc:
            db.compile("Modify student"
                       "(advisor := department with (dept-nbr = 100)) "
                       'Where name = "x"')
        assert "range class" in str(exc.value)

    def test_sim125_update_through_view(self):
        database = Database(
            "Class worker ( pay: number[9,2] );\n"
            "View earners of worker where pay > 0;")
        with pytest.raises(StaticUpdateError) as exc:
            database.compile("Modify earners(pay := 1) Where pay > 0")
        assert exc.value.diagnostic_code == "SIM125"

    def test_sim126_unknown_class(self, db):
        with pytest.raises(StaticUpdateError) as exc:
            db.compile("Insert nosuch(x := 1)")
        assert exc.value.diagnostic_code == "SIM126"

    def test_sim126_insert_from_non_ancestor(self, db):
        with pytest.raises(StaticUpdateError) as exc:
            db.compile("Insert teaching-assistant From course "
                       'Where title = "x"')
        assert exc.value.diagnostic_code == "SIM126"

    def test_sim127_literal_outside_domain_warns(self, db):
        compiled = db.compile(
            "Modify course(credits := 99) Where course-no = 101")
        diagnostic = find(compiled.diagnostics, "SIM127")
        assert diagnostic.severity == WARNING

    def test_lint_update_direct_api(self, db):
        statement = parse_dml("Modify student(nosuch := 1) "
                              "Where student-nbr = 1")
        diagnostics = lint_update(db.schema, statement)
        assert codes(diagnostics) == ["SIM120"]
        assert diagnostics[0].span.line == 1


# -- Plan verification (SIM2xx) --------------------------------------------------


class TestPlanVerifier:
    def compiled(self, db, text):
        query = parse_dml(text)
        tree = db.qualifier.resolve_retrieve(query)
        plan = db.optimizer.choose_plan(query, tree)
        return query, tree, plan

    def test_green_across_the_canonical_workload(self, db):
        for text in UNIVERSITY_QUERIES:
            _, tree, plan = self.compiled(db, text)
            assert verify_plan(db.schema, tree, plan) == []

    def test_sim200_label_tampering_detected(self, db):
        _, tree, plan = self.compiled(
            db, "From student Retrieve name, name of advisor")
        advisor = next(n for n in tree.all_nodes() if n.kind == "eva")
        advisor.label = TYPE2
        diagnostics = verify_plan(db.schema, tree, plan)
        assert "SIM200" in codes(diagnostics)

    def test_sim201_root_order_not_a_permutation(self, db):
        _, tree, plan = self.compiled(
            db, "From student, instructor Retrieve name of student, "
                "name of instructor Where advisor of student = instructor")
        plan.root_order = ["student", "bogus"]
        diagnostics = verify_plan(db.schema, tree, plan)
        assert "SIM201" in codes(diagnostics)

    def test_sim202_type1_child_under_existential_subtree(self, db):
        _, tree, plan = self.compiled(
            db, "From course Retrieve course-no "
                'Where name of teachers of prerequisites = "X"')
        existential = next(n for n in tree.all_nodes()
                           if n.label == TYPE2 and n.children)
        child = next(iter(existential.children.values()))
        child.label = TYPE1
        diagnostics = verify_plan(db.schema, tree, plan)
        assert "SIM202" in codes(diagnostics)

    def test_sim203_type3_branch_used_in_selection(self, db):
        _, tree, plan = self.compiled(
            db, "From student Retrieve name, name of advisor")
        advisor = next(n for n in tree.all_nodes() if n.label == TYPE3)
        advisor.used_in_selection = True
        diagnostics = verify_plan(db.schema, tree, plan)
        assert "SIM203" in codes(diagnostics)

    def test_sim204_access_path_tampering(self, db):
        _, tree, plan = self.compiled(db, "From student Retrieve name")
        plan.root_access["student"] = AccessPath(
            kind="index", class_name="student", attr_name="nosuch")
        diagnostics = verify_plan(db.schema, tree, plan)
        assert "SIM204" in codes(diagnostics)

    def test_tampered_plan_fails_closed_at_execution(self, db):
        query = parse_dml("From student Retrieve name")
        tree = db.qualifier.resolve_retrieve(query)
        plan = Plan(root_order=["bogus"])
        with pytest.raises(PlanVerificationError):
            from repro.analysis import raise_for_errors
            raise_for_errors(verify_plan(db.schema, tree, plan))


# -- Front-end wiring ------------------------------------------------------------


class TestDatabaseWiring:
    def test_execute_raises_before_touching_data(self, db):
        before = db.store.class_count("student")
        with pytest.raises(StaticUpdateError):
            db.execute('Modify student(advisor := 5) Where name = "x"')
        assert db.store.class_count("student") == before

    def test_warnings_ride_on_the_result_set(self, db):
        result = db.query("From course Retrieve title Where credits = 99")
        assert "SIM113" in codes(result.diagnostics)
        assert result.rows == []

    def test_compile_does_not_execute_updates(self, db):
        before = db.store.class_count("department")
        compiled = db.compile('Insert department(dept-nbr := 999, '
                              'name := "Ghost")')
        assert compiled.diagnostics == []
        assert db.store.class_count("department") == before

    def test_iqf_prints_warnings(self, db):
        from repro.interfaces.iqf import run_script
        transcript = run_script(
            Database(UNIVERSITY_DDL, constraint_mode="off"),
            "From course Retrieve title Where credits = 99;\n")
        assert "SIM113" in transcript

    def test_iqf_lint_command(self):
        from repro.interfaces.iqf import run_script
        transcript = run_script(
            Database("Class a ( x: integer );"), ".lint\n")
        assert "schema is clean" in transcript


class TestWorkloadSweep:
    """Acceptance: the canonical UNIVERSITY workload lints clean."""

    def test_every_query_compiles_without_errors_or_warnings(self, db):
        for text in UNIVERSITY_QUERIES:
            compiled = db.compile(text)
            assert_none_of_severity(compiled.diagnostics, ERROR)
            assert_none_of_severity(compiled.diagnostics, WARNING)

    def test_lint_retrieve_direct_api(self, db):
        query = parse_dml(UNIVERSITY_QUERIES[0])
        db.qualifier.resolve_retrieve(query)
        assert lint_retrieve(db.schema, query) == []
