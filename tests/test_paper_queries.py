"""E2: every worked DML example in the paper, executed end to end.

Two of the paper's examples reference names that differ from its own §7
schema (``student-no`` vs ``student-nbr``; ``transitive(prerequisite)`` vs
the declared ``prerequisites``); the tests use the schema's spelling and
note the substitution.
"""

import pytest
from decimal import Decimal

from repro.types.tvl import is_null


class TestSection41:
    def test_print_name_and_advisor_name(self, small_university):
        """'From Student Retrieve Name, Name of Advisor' — §4.1.

        Names of persons who are not students are not printed; a student
        without an advisor is printed with a null advisor name (directed
        outer join)."""
        rows = small_university.query(
            "From Student Retrieve Name, Name of Advisor").rows
        assert ("John Doe", "Joe Bloke") in rows
        lone = next(r for r in rows if r[0] == "Lone Wolf")
        assert is_null(lone[1])
        assert all(r[0] not in ("Joe Bloke", "Jane Roe") for r in rows)


class TestSection42:
    def test_shorthand_equivalence(self, small_university):
        """§4.2: 'Name of Advisor of Student, Salary of Advisor of Student'
        and 'Name of Advisor, Salary' yield identical results."""
        full = small_university.query(
            "From Student Retrieve Name of Advisor of Student,"
            " Salary of Advisor of Student").rows
        short = small_university.query(
            "From Student Retrieve Name of Advisor, Salary").rows
        assert full == short

    def test_role_conversion_examples(self, small_university):
        """§4.2 qualification examples (student-nbr per the §7 schema)."""
        small_university.query(
            "From Student Retrieve Title of Courses-Enrolled of Student")
        small_university.query(
            "From Student Retrieve Teaching-Load of Student as"
            " Teaching-Assistant")
        small_university.query(
            "From Student Retrieve Student-Nbr of Spouse as Student"
            " of Student")


class TestSection44:
    def test_binding_query(self, small_university):
        """The §4.4 binding example: one student, his courses, and their
        teachers — all occurrences bound to shared range variables."""
        rows = small_university.query("""
            Retrieve Name of Student,
                Title of Courses-Enrolled of Student,
                Credits of Courses-Enrolled of Student,
                Name of Teachers of Courses-Enrolled of Student
            Where Soc-Sec-No of Student = 456887766""").rows
        assert rows[0][:3] == ("John Doe", "Algebra I", 3)
        assert is_null(rows[0][3])  # course has no teachers yet


class TestSection47:
    def test_transitive_closure_retrieve(self, small_university):
        """'Retrieve Title of Transitive(prerequisite) of Course Where
        Title of Course = "Calculus I"' (schema spelling: prerequisites)."""
        rows = small_university.query("""
            Retrieve Title of Transitive(prerequisites) of Course
            Where Title of Course = "Calculus I" """).rows
        assert rows == [("Algebra I",)]


class TestSection49Examples:
    def test_example_1_insert_and_enroll(self, empty_university):
        """Example 1: Insert John Doe as a STUDENT and enroll him in
        Algebra I."""
        db = empty_university
        db.execute('Insert course(course-no := 101, title := "Algebra I",'
                   ' credits := 3)')
        db.execute('''Insert student(name := "John Doe",
            soc-sec-no := 456887766,
            courses-enrolled := course with (title = "Algebra I"))''')
        rows = db.query('From student Retrieve name,'
                        ' title of courses-enrolled').rows
        assert rows == [("John Doe", "Algebra I")]

    def test_example_2_make_him_instructor_too(self, small_university):
        """Example 2: Insert instructor From person Where name = "John
        Doe" (employee-nbr := 1729).  The fixture already assigns 1729 to
        Joe Bloke, so John gets 1731 here (employee-nbr is UNIQUE)."""
        db = small_university
        db.execute('Insert instructor From person Where name = "John Doe"'
                   ' (employee-nbr := 1731)')
        rows = db.query('From person Retrieve profession'
                        ' Where name = "John Doe"').rows
        assert {r[0] for r in rows} == {"student", "instructor"}
        assert db.query('From instructor Retrieve employee-nbr'
                        ' Where name = "John Doe"').scalar() == 1731

    def test_example_3_drop_course_change_advisor(self, small_university):
        """Example 3: drop Algebra I and let Jane Roe be his advisor (the
        paper says Joe Bloke; our fixture's Joe is already the advisor, so
        we switch to Jane to observe the change)."""
        db = small_university
        db.execute('''Modify student (
            courses-enrolled := exclude courses-enrolled
                with (title = "Algebra I"),
            advisor := instructor with (name = "Jane Roe"))
            Where name of student = "John Doe"''')
        rows = db.query('From student Retrieve name of advisor,'
                        ' count(courses-enrolled) of student'
                        ' Where name = "John Doe"').rows
        assert rows == [("Jane Roe", 0)]

    def test_example_4_conditional_raise(self, small_university):
        """Example 4: 10% raise for instructors teaching > 3 courses who
        advise students from other departments."""
        db = small_university
        # Set the stage: Joe teaches 3 courses (the MAX) so use > 2 below;
        # the paper's shape (count + quantifier) is what matters.
        for title in ("Algebra I", "Calculus I", "Quantum Chromodynamics"):
            db.execute(f'Modify instructor(courses-taught := include course'
                       f' with (title = "{title}"))'
                       f' Where name = "Joe Bloke"')
        # John Doe majors in Physics and Joe works in Physics: quantifier
        # finds no differing department -> no raise.
        count = db.execute('''Modify instructor( salary := 1.1 * salary)
            Where count(courses-taught) of instructor > 2 and
                assigned-department neq
                some(major-department of advisees)''')
        assert count == 0
        # Move John's major: now Joe advises a student from another
        # department and gets the raise.
        db.execute('Modify student(major-department := department with'
                   ' (name = "Math")) Where name = "John Doe"')
        count = db.execute('''Modify instructor( salary := 1.1 * salary)
            Where count(courses-taught) of instructor > 2 and
                assigned-department neq
                some(major-department of advisees)''')
        assert count == 1
        value = db.query('From instructor Retrieve salary'
                         ' Where name = "Joe Bloke"').scalar()
        assert value == Decimal("55000.00")

    def test_example_5_minimum_courses_before_qcd(self, small_university):
        """Example 5: count distinct transitive prerequisites of Quantum
        Chromodynamics."""
        value = small_university.query('''
            From course
            Retrieve count distinct (transitive(prerequisites))
            Where title = "Quantum Chromodynamics"''').scalar()
        assert value == 2

    def test_example_6_advisors_of_physics_students(self, small_university):
        """Example 6: instructors advising some Physics student, with the
        courses they teach (outer-joined)."""
        db = small_university
        db.execute('Modify instructor(courses-taught := include course with'
                   ' (title = "Calculus I")) Where name = "Joe Bloke"')
        rows = db.query('''
            Retrieve name of instructor, title of courses-taught
            Where name of major-department of advisees = "Physics"''').rows
        assert rows == [("Joe Bloke", "Calculus I")]
        # Jane advises nobody: not selected at all.
        assert all(r[0] != "Jane Roe" for r in rows)

    def test_example_7_student_instructor_pairs(self, small_university):
        """Example 7: older student, instructor not his advisor, not a TA."""
        rows = small_university.query('''
            From student, instructor
            Retrieve name of student, name of Instructor
            Where birthdate of student < birthdate of instructor and
                advisor of student NEQ instructor and
                not instructor isa teaching-assistant''').rows
        # John (1940) is older than Jane (1950); Jane is not his advisor.
        assert rows == [("John Doe", "Jane Roe")]
