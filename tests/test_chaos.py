"""Chaos/load harness: seeded multi-client contention with fault
injection, verified against a committed-prefix oracle.

Each writer thread runs two-statement transactions over two classes in
a *seeded random order*, so lock acquisition order differs between
sessions and deadlocks are guaranteed under load.  Every transaction
that commits records its deltas in a thread-local ledger; at the end
the database must equal the initial state plus exactly the committed
ledgers — no lost updates, no phantom effects from aborted victims.
Transient storage faults (repeat 2, below the retry policy's 4
attempts) fire during the run and must be absorbed invisibly.

The unmarked test is the fast tier-1 smoke; ``-m chaos`` selects the
heavier seeded soak (the CI chaos lane / ``make chaos``).
"""

import random
import threading

import pytest

from repro import Database
from repro.engine import lockdep
from repro.engine.sessions import LockConflict, Session


@pytest.fixture(autouse=True)
def _zero_lock_order_violations():
    """Every chaos scenario must finish with a clean lockdep report —
    the whole point of running the soak instrumented (`make chaos` sets
    REPRO_LOCKDEP=1; under pytest it is on by default anyway)."""
    yield
    assert lockdep.violations() == [], lockdep.violations()

CHAOS_DDL = """
Class Account (
  nbr: integer (1..99) unique required;
  balance: integer );

Class Audit (
  nbr: integer (1..99) unique required;
  total: integer );
"""

ACCOUNTS = 4


def build_bank(accounts=ACCOUNTS):
    db = Database(CHAOS_DDL, constraint_mode="off")
    for nbr in range(1, accounts + 1):
        db.execute(f"Insert account(nbr := {nbr}, balance := 0)")
        db.execute(f"Insert audit(nbr := {nbr}, total := 0)")
    return db


class Writer(threading.Thread):
    """One chaos client: seeded deadlock-prone update mix.  Commits are
    recorded in ``self.committed`` only after ``commit()`` returns —
    the committed-prefix oracle."""

    def __init__(self, db, seed, transactions, lock_timeout=5.0,
                 entity_locks=False):
        super().__init__(name=f"chaos-writer-{seed}")
        # entity_locks defaults OFF here: the deadlock-certainty these
        # scenarios assert comes from class-granularity conflicts; the
        # entity-granular path has its own scenarios below.
        self.session = Session(db, lock_timeout=lock_timeout,
                               entity_locks=entity_locks)
        self.rng = random.Random(seed)
        self.transactions = transactions
        self.accounts = ACCOUNTS
        self.committed = []  # [(class_name, nbr, delta), ...] per commit
        self.aborted = 0
        self.error = None

    def run(self):
        try:
            for _ in range(self.transactions):
                self._one_transaction()
        except Exception as exc:  # pragma: no cover — fail the test
            self.error = exc

    def _one_transaction(self):
        nbr_a = self.rng.randint(1, self.accounts)
        nbr_b = self.rng.randint(1, self.accounts)
        delta = self.rng.randint(1, 5)
        # Half the sessions lock account→audit, half audit→account:
        # opposite orders are what makes the mix deadlock-prone.
        steps = [("account", "balance", nbr_a, delta),
                 ("audit", "total", nbr_b, delta)]
        if self.rng.random() < 0.5:
            steps.reverse()
        try:
            for class_name, attr, nbr, step_delta in steps:
                self.session.execute(
                    f"Modify {class_name}({attr} := {attr} + {step_delta})"
                    f" Where nbr = {nbr}")
            self.session.commit()
        except LockConflict:
            # Deadlock victim (transaction already aborted) or timeout:
            # abort is idempotent; nothing from this txn may survive.
            self.session.abort()
            self.aborted += 1
        else:
            for class_name, _attr, nbr, step_delta in steps:
                self.committed.append((class_name, nbr, step_delta))


class DisjointWriter(threading.Thread):
    """Entity-granularity client: every transaction updates ONE fixed
    account, disjoint from every other writer's.  Under entity locks,
    none of these sessions may ever block, time out, or deadlock."""

    def __init__(self, db, nbr, seed, transactions):
        super().__init__(name=f"chaos-disjoint-{nbr}")
        self.session = Session(db, entity_locks=True)
        self.nbr = nbr
        self.rng = random.Random(seed)
        self.transactions = transactions
        self.committed = []
        self.aborted = 0
        self.error = None

    def run(self):
        try:
            for _ in range(self.transactions):
                delta = self.rng.randint(1, 5)
                self.session.execute(
                    f"Modify account(balance := balance + {delta})"
                    f" Where nbr = {self.nbr}")
                self.session.commit()
                self.committed.append(("account", self.nbr, delta))
        except Exception as exc:  # pragma: no cover — fail the test
            self.error = exc


def run_chaos(db, writers, readers=0, fault_every=0, seed=1234,
              accounts=ACCOUNTS):
    """Drive the writer fleet (plus optional snapshot readers), arming
    transient faults from the controller thread while they run."""
    injector = db.install_faults(seed=seed) if fault_every else None
    reader_errors = []
    stop_readers = threading.Event()

    def read_loop(i):
        session = Session(db)
        try:
            while not stop_readers.is_set():
                rows = session.query("From account Retrieve balance").rows
                if len(rows) != accounts:
                    raise AssertionError(f"snapshot saw {len(rows)} rows")
        except Exception as exc:  # pragma: no cover
            reader_errors.append(exc)

    reader_threads = [threading.Thread(target=read_loop, args=(i,))
                      for i in range(readers)]
    for thread in writers + reader_threads:
        thread.start()
    rounds = 0
    while any(w.is_alive() for w in writers):
        if injector is not None and injector.armed == 0:
            # transient, repeat 2 < RetryPolicy max_attempts 4: the
            # retry layer must absorb every one of these invisibly
            injector.fail_write(fault_every, error="transient", repeat=2)
            rounds += 1
        for w in writers:
            w.join(timeout=0.05)
    for w in writers:
        w.join(timeout=30.0)
    stop_readers.set()
    for thread in reader_threads:
        thread.join(timeout=30.0)
    assert not any(w.is_alive() for w in writers), "writer hang"
    assert not any(t.is_alive() for t in reader_threads), "reader hang"
    assert reader_errors == []
    for w in writers:
        if w.error is not None:
            raise w.error
    return rounds


def assert_committed_prefix(db, writers, accounts=ACCOUNTS):
    """The database state must equal initial + exactly the committed
    ledgers — aborted transactions leave no trace."""
    expected = {("account", nbr): 0 for nbr in range(1, accounts + 1)}
    expected.update({("audit", nbr): 0 for nbr in range(1, accounts + 1)})
    for w in writers:
        for class_name, nbr, delta in w.committed:
            expected[(class_name, nbr)] += delta
    for (class_name, nbr), total in expected.items():
        attr = "balance" if class_name == "account" else "total"
        actual = db.query(f"From {class_name} Retrieve {attr}"
                          f" Where nbr = {nbr}").scalar()
        assert actual == total, (
            f"{class_name} {nbr}: stored {actual}, committed {total}")
    report = db.check()
    assert report.ok, report


class TestChaosSmoke:
    def test_contention_smoke(self):
        """Fast tier-1 lane: 8 writers, deadlock-prone mix, oracle +
        checker verification, no faults."""
        db = build_bank()
        writers = [Writer(db, seed=i, transactions=12) for i in range(8)]
        run_chaos(db, writers, readers=2)
        assert_committed_prefix(db, writers)
        stats = db._lock_manager.statistics()
        # Opposite-order two-class transactions across 8 sessions make
        # deadlocks effectively certain at this volume.
        assert stats["deadlocks"] > 0
        assert stats["waiting_now"] == 0
        total_commits = sum(len(w.committed) // 2 for w in writers)
        total_aborts = sum(w.aborted for w in writers)
        assert total_commits + total_aborts == 8 * 12

    def test_snapshot_readers_never_blocked(self):
        """Readers alongside the full writer fleet finish with the
        writers: they never queue behind exclusive class locks."""
        db = build_bank()
        writers = [Writer(db, seed=100 + i, transactions=8)
                   for i in range(4)]
        run_chaos(db, writers, readers=4)
        assert_committed_prefix(db, writers)

    def test_disjoint_entity_writers_never_conflict(self):
        """Eight writers updating disjoint entities of ONE class: under
        entity-granularity locking their IX class locks are compatible
        and their entity X locks never collide — zero lock conflicts,
        zero aborts, every transaction commits, oracle intact."""
        db = build_bank(accounts=8)
        writers = [DisjointWriter(db, nbr=i + 1, seed=i, transactions=15)
                   for i in range(8)]
        run_chaos(db, writers, readers=2, accounts=8)
        assert_committed_prefix(db, writers, accounts=8)
        stats = db._lock_manager.statistics()
        assert stats["deadlocks"] == 0
        assert stats["timeouts"] == 0
        assert all(w.aborted == 0 for w in writers)
        assert all(len(w.committed) == 15 for w in writers)
        # Every key released AND pruned: the holder map must be empty,
        # not full of empty per-entity husks.
        assert stats["tracked_keys"] == 0

    def test_same_entity_contention_still_deadlocks(self):
        """Entity-granular sessions hammering the SAME entities in
        opposite class orders reproduce the legacy deadlock shape —
        victim selection and the oracle work over two-level keys."""
        db = build_bank(accounts=1)
        writers = [Writer(db, seed=200 + i, transactions=12,
                          entity_locks=True) for i in range(8)]
        for w in writers:
            w.accounts = 1      # every txn collides on entity nbr=1
        run_chaos(db, writers, accounts=1)
        assert_committed_prefix(db, writers, accounts=1)
        stats = db._lock_manager.statistics()
        assert stats["deadlocks"] > 0
        assert stats["waiting_now"] == 0
        total_commits = sum(len(w.committed) // 2 for w in writers)
        total_aborts = sum(w.aborted for w in writers)
        assert total_commits + total_aborts == 8 * 12


@pytest.mark.chaos
class TestChaosSoak:
    def test_faulted_soak(self):
        """The heavier seeded soak: 8 writers, transient write faults
        arming continuously, snapshot readers throughout."""
        db = build_bank()
        writers = [Writer(db, seed=1000 + i, transactions=30)
                   for i in range(8)]
        rounds = run_chaos(db, writers, readers=2, fault_every=25)
        assert_committed_prefix(db, writers)
        stats = db._lock_manager.statistics()
        assert stats["deadlocks"] > 0
        # Transient faults actually fired and were absorbed: no writer
        # surfaced a storage error and the oracle still holds.
        assert db.perf.transient_retries >= 1
        assert db.perf.transient_giveups == 0
        assert rounds >= 1
