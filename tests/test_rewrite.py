"""The semantic rewrite pass: soundness, plan shapes, and the off-switch.

Every rewrite must be *unobservable* in the result rows: the pass only
shrinks a root domain to a provable superset of the qualifying entities
(still running the full WHERE afterwards) or permutes work the executor
performs anyway.  The sweep below asserts row identity for the whole
UNIVERSITY workload across rewrite on/off x parallelism x MVCC snapshot
reads, and the unit tests pin each rewrite kind's plan shape, the
SIM400/SIM401 verifier behaviour, and the byte-identical legacy-plan
guarantee of ``Database(rewrite=False)``.
"""

from __future__ import annotations

import pytest

from repro import parse_dml
from repro.database import Database
from repro.engine.sessions import Session
from repro.errors import PlanVerificationError
from repro.optimizer.plan import AccessPath, Plan
from repro.optimizer.rewrite import rewrite_query
from repro.optimizer.strategies import Optimizer
from repro.workloads.university import UNIVERSITY_QUERIES, build_university

#: queries that exercise each rewrite kind on the UNIVERSITY schema
SUBCLASS_QUERY = ('From person Retrieve name'
                  ' Where person isa instructor and not person isa student')
EMPTY_QUERY = ('From person Retrieve name'
               ' Where person isa student and not person isa person')
FLIP_QUERY = 'From student Retrieve name Where employee-nbr of advisor = 1001'
REORDER_QUERY = ('From student Retrieve name'
                 ' Where credits of courses-enrolled > 3'
                 ' and salary of advisor > 0')
FACTOR_QUERY = ('From student Retrieve name, sum(credits of courses-enrolled)'
                ' Where credits of courses-enrolled > 3')

EXTRA_QUERIES = [SUBCLASS_QUERY, EMPTY_QUERY, FLIP_QUERY, REORDER_QUERY,
                 FACTOR_QUERY]
ALL_QUERIES = UNIVERSITY_QUERIES + EXTRA_QUERIES


class TestRowIdentitySweep:
    """Rewrites on must return the same rows as rewrites off, under
    serial and parallel execution and under MVCC snapshot reads."""

    @pytest.fixture(scope="class")
    def reference(self):
        database = build_university(seed=11)
        database.rewrite = False
        return {text: database.query(text).rows for text in ALL_QUERIES}

    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_rewrite_on_matches_off(self, reference, parallelism):
        database = build_university(seed=11)
        database.executor.parallelism = parallelism
        assert database.rewrite is True
        for text in ALL_QUERIES:
            assert database.query(text).rows == reference[text], text

    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_snapshot_reads_match(self, reference, parallelism):
        database = build_university(seed=11)
        database.executor.parallelism = parallelism
        session = Session(database, mvcc=True)
        for text in ALL_QUERIES:
            assert session.query(text).rows == reference[text], text

    def test_snapshot_reads_match_rewrite_off(self, reference):
        database = build_university(seed=11)
        database.rewrite = False
        session = Session(database, mvcc=True)
        for text in ALL_QUERIES:
            assert session.query(text).rows == reference[text], text


class TestLegacyPlansByteIdentical:
    """``rewrite=False`` must reproduce the legacy planner exactly: same
    strategies, same costs, same describe() text — compared against an
    optimizer whose rewrite stage is surgically removed."""

    def test_explain_identical(self, monkeypatch):
        off = build_university(seed=11)
        off.rewrite = False
        legacy = build_university(seed=11)
        monkeypatch.setattr(Optimizer, "_run_rewrite",
                            lambda self, query, tree: ({}, None))
        for text in ALL_QUERIES:
            assert off.explain(text) == legacy.explain(text), text

    def test_off_plans_never_mention_rewrites(self):
        database = build_university(seed=11)
        database.rewrite = False
        for text in ALL_QUERIES:
            report = database.explain(text)
            assert "rewrite:" not in report, text
            assert "subclass-prune" not in report, text
            assert "eva-flip" not in report, text

    def test_ctor_flag(self):
        assert build_university(seed=11).rewrite is True
        database = Database("Class C (n: integer);", rewrite=False)
        assert database.rewrite is False


class TestSubclassPruning:
    def test_plan_shape_and_rows(self):
        database = build_university(seed=11)
        report = database.explain(SUBCLASS_QUERY)
        assert "subclass-prune person -> instructor" in report
        assert "rewrite: subclass(person->instructor)" in report
        rows = database.query(SUBCLASS_QUERY).rows
        off = build_university(seed=11)
        off.rewrite = False
        assert rows == off.query(SUBCLASS_QUERY).rows
        assert rows  # instructors who are not students exist in the seed

    def test_counter(self):
        database = build_university(seed=11)
        before = database.perf.as_dict()["rewrite_subclass_prunes"]
        database.query(SUBCLASS_QUERY)
        assert database.perf.as_dict()["rewrite_subclass_prunes"] > before


class TestEmptyExtent:
    def test_short_circuit(self):
        database = build_university(seed=11)
        result = database.execute(EMPTY_QUERY)
        assert result.rows == []
        assert [d.code for d in result.diagnostics] == ["SIM400"]

    def test_storage_untouched(self):
        database = build_university(seed=11)
        database.reset_io_stats()
        before = database.perf.as_dict()["records_decoded"]
        database.execute(EMPTY_QUERY)
        assert database.perf.as_dict()["records_decoded"] == before

    def test_disjoint_proof(self):
        database = build_university(seed=11)
        query = ('From course Retrieve title'
                 ' Where course isa student')
        result = database.execute(query)
        assert result.rows == []
        assert [d.code for d in result.diagnostics] == ["SIM400"]


class TestEvaFlip:
    def test_plan_shape_and_rows(self):
        database = build_university(seed=11)
        report = database.explain(FLIP_QUERY)
        assert "eva-flip student via inverse(advisor)" in report
        assert "instructor.employee-nbr = 1001" in report
        off = build_university(seed=11)
        off.rewrite = False
        assert database.query(FLIP_QUERY).rows == off.query(FLIP_QUERY).rows


class TestReorderAndFactor:
    def test_reorder_tag(self):
        database = build_university(seed=11)
        assert "exists-reorder" in database.explain(REORDER_QUERY)

    def test_factor_tag_and_memo_sharing(self):
        database = build_university(seed=11)
        assert "factor(" in database.explain(FACTOR_QUERY)
        before = database.perf.as_dict()
        rows = database.query(FACTOR_QUERY).rows
        delta = {k: v - before[k] for k, v in database.perf.as_dict().items()}
        # The WHERE traversal and the aggregate traversal share one memo
        # key: the second node's enumerations are all memo hits.
        assert delta["memo_hits"] > 0
        off = build_university(seed=11)
        off.rewrite = False
        assert rows == off.query(FACTOR_QUERY).rows


class TestVerifier:
    """verify_plan re-derives every rewrite proof independently and
    fails closed (SIM401) on any it cannot reproduce."""

    def _plan(self, database, text, access):
        query = parse_dml(text)
        tree = database.qualifier.resolve_retrieve(query)
        return query, tree, Plan(root_access={"person": access},
                                 description=access.kind,
                                 estimated_cost=access.estimated_cost)

    def test_bogus_subclass_rejected(self):
        from repro.analysis import raise_for_errors, verify_plan
        database = build_university(seed=11)
        access = AccessPath(kind="subclass", class_name="person",
                            estimated_cost=1.0, estimated_rows=1.0,
                            subclass="course")   # not in person's hierarchy
        query, tree, plan = self._plan(database, "From person Retrieve name",
                                       access)
        with pytest.raises(PlanVerificationError):
            raise_for_errors(verify_plan(database.schema, tree, plan))

    def test_vacuous_subclass_rejected(self):
        from repro.analysis import raise_for_errors, verify_plan
        database = build_university(seed=11)
        access = AccessPath(kind="subclass", class_name="student",
                            estimated_cost=1.0, estimated_rows=1.0,
                            subclass="person")   # ancestor: no pruning
        query = parse_dml("From student Retrieve name")
        tree = database.qualifier.resolve_retrieve(query)
        plan = Plan(root_access={"student": access},
                    description="subclass", estimated_cost=1.0)
        with pytest.raises(PlanVerificationError):
            raise_for_errors(verify_plan(database.schema, tree, plan))

    def test_unprovable_empty_rejected(self):
        from repro.analysis import raise_for_errors, verify_plan
        database = build_university(seed=11)
        access = AccessPath(kind="empty", class_name="person",
                            estimated_cost=0.0, estimated_rows=0.0,
                            proof=("contradiction", "instructor", "student"))
        query, tree, plan = self._plan(database, "From person Retrieve name",
                                       access)
        with pytest.raises(PlanVerificationError):
            raise_for_errors(verify_plan(database.schema, tree, plan))

    def test_provable_empty_accepted_with_info(self):
        from repro.analysis import verify_plan
        database = build_university(seed=11)
        access = AccessPath(kind="empty", class_name="person",
                            estimated_cost=0.0, estimated_rows=0.0,
                            proof=("contradiction", "student", "person"))
        query, tree, plan = self._plan(database, "From person Retrieve name",
                                       access)
        verdict = verify_plan(database.schema, tree, plan)
        assert [d.code for d in verdict] == ["SIM400"]
        assert verdict[0].severity == "info"


class TestRewritePass:
    """Direct unit coverage of rewrite_query's analysis."""

    def test_describe_none_when_nothing_applies(self):
        database = build_university(seed=11)
        query = parse_dml("From student Retrieve name")
        tree = database.qualifier.resolve_retrieve(query)
        result = rewrite_query(database.store, database.schema, query, tree)
        assert result.describe() == "none"
        assert result.hints == {}

    def test_subclass_hint_picks_smallest_extent(self):
        database = build_university(seed=11)
        query = parse_dml('From person Retrieve name'
                          ' Where person isa student'
                          ' and person isa teaching-assistant')
        tree = database.qualifier.resolve_retrieve(query)
        result = rewrite_query(database.store, database.schema, query, tree)
        hint = result.hints["person"]
        # teaching-assistant is the smaller extent of the two candidates
        assert hint.subclass == "teaching-assistant"

    def test_statement_counter(self):
        database = build_university(seed=11)
        before = database.perf.as_dict()["rewrite_statements"]
        database.query("From student Retrieve name")
        assert database.perf.as_dict()["rewrite_statements"] == before + 1


class TestIQFKnob:
    def test_set_rewrite(self):
        from repro.interfaces.iqf import run_script
        database = build_university(seed=11)
        transcript = run_script(database, ".set rewrite off\n.set\n")
        assert "rewrite off" in transcript
        assert "rewrite: off" in transcript
        assert database.rewrite is False
        run_script(database, ".set rewrite on\n")
        assert database.rewrite is True
