"""Error-path coverage: every user mistake gets a SIM error with a
message that names the offending construct (never a raw Python error)."""

import pytest

from repro import (
    Database,
    DMLSyntaxError,
    QualificationError,
    SchemaError,
    SimError,
)
from repro.errors import (
    CatalogError,
    ExecutionError,
    IntegrityError,
    TypeMismatchError,
)


class TestQualificationErrors:
    def test_unknown_perspective(self, small_university):
        with pytest.raises(QualificationError, match="ghost"):
            small_university.query("From ghost Retrieve name")

    def test_unknown_attribute_names_class(self, small_university):
        with pytest.raises(QualificationError, match="student"):
            small_university.query(
                "From student Retrieve nonexistent of student")

    def test_qualify_through_dva_rejected(self, small_university):
        with pytest.raises(QualificationError, match="cannot"):
            small_university.query(
                "From student Retrieve x of name of student")

    def test_transitive_on_dva_rejected(self, small_university):
        with pytest.raises(QualificationError, match="TRANSITIVE"):
            small_university.query(
                "From course Retrieve transitive(title) of course")

    def test_transitive_across_hierarchies_rejected(self, small_university):
        with pytest.raises(QualificationError, match="cyclic"):
            small_university.query(
                "From student Retrieve name of transitive(advisor)"
                " of student")

    def test_isa_unknown_class(self, small_university):
        with pytest.raises(QualificationError, match="ISA"):
            small_university.query(
                "From person Retrieve name Where person isa ghost")

    def test_isa_on_value_rejected(self, small_university):
        with pytest.raises(QualificationError):
            small_university.query(
                "From person Retrieve name Where name of person isa student")

    def test_inverse_of_unknown_eva(self, small_university):
        with pytest.raises(QualificationError, match="inverse"):
            small_university.query(
                "From person Retrieve name of inverse(ghost)")


class TestExpressionErrors:
    def test_non_boolean_where(self, small_university):
        with pytest.raises(TypeMismatchError, match="not boolean"):
            small_university.query(
                "From course Retrieve title Where credits")

    def test_incomparable_types(self, small_university):
        with pytest.raises(TypeMismatchError):
            small_university.query(
                'From course Retrieve title Where credits < "three"')

    def test_bare_quantifier_rejected(self, small_university):
        with pytest.raises((ExecutionError, DMLSyntaxError)):
            small_university.query(
                "From student Retrieve some(credits of courses-enrolled)")

    def test_like_needs_strings(self, small_university):
        with pytest.raises(TypeMismatchError, match="LIKE"):
            small_university.query(
                'From course Retrieve title Where credits like "3%"')


class TestUpdateErrors:
    def test_modify_unknown_class(self, small_university):
        with pytest.raises(SimError):
            small_university.execute('Modify ghost(x := 1)')

    def test_insert_assigning_unknown_attribute(self, small_university):
        with pytest.raises((IntegrityError, SchemaError)):
            small_university.execute('Insert person(soc-sec-no := 5,'
                                     ' shoe-size := 12)')

    def test_eva_assignment_without_selector(self, small_university):
        with pytest.raises(IntegrityError, match="WITH selector"):
            small_university.execute(
                'Insert student(soc-sec-no := 5, advisor := 3)')

    def test_selector_wrong_range_class(self, small_university):
        with pytest.raises(IntegrityError, match="range class"):
            small_university.execute(
                'Insert student(soc-sec-no := 5,'
                ' advisor := course with (credits = 3))')

    def test_with_selector_on_dva(self, small_university):
        with pytest.raises(IntegrityError):
            small_university.execute(
                'Modify course(credits := course with (credits = 3))'
                ' Where course-no = 101')

    def test_multivalued_rhs_in_scalar_assignment(self, small_university):
        # The two instructors have different salaries: the RHS is
        # ambiguous for a single-valued assignment.
        with pytest.raises(IntegrityError, match="multiple distinct"):
            small_university.execute(
                'Modify department(dept-nbr := salary of instructor)'
                ' Where name = "Physics"')


class TestSchemaErrors:
    def test_query_on_unresolved_schema(self):
        from repro.schema import Schema
        from repro.mapper import MapperStore
        with pytest.raises(CatalogError):
            MapperStore(Schema("empty"))

    def test_error_hierarchy_is_catchable(self, small_university):
        # Everything raised on a user mistake derives from SimError.
        for bad in ("From ghost Retrieve x",
                    "From student Retrieve",
                    'Insert ghost(x := 1)'):
            with pytest.raises(SimError):
                small_university.execute(bad)
