"""Database save/open tests: a saved file reopens as an identical,
fully-operational database (opening is a restart through the recovery
path)."""

import os

import pytest

from repro import Database, PhysicalDesign, parse_ddl
from repro.errors import SimError, TransactionError
from repro.workloads import UNIVERSITY_DDL, build_university


@pytest.fixture()
def path(tmp_path):
    return str(tmp_path / "university.simdb")


class TestRoundTrip:
    def test_data_survives(self, path):
        db = build_university(students=10, instructors=4, courses=8, seed=2)
        db.store.pool.flush()
        fingerprint = db.query(
            "From student Retrieve soc-sec-no, name of advisor,"
            " count(courses-enrolled) of student").rows
        db.save(path)
        reopened = Database.open(path)
        assert reopened.query(
            "From student Retrieve soc-sec-no, name of advisor,"
            " count(courses-enrolled) of student").rows == fingerprint

    def test_schema_extensions_survive(self, path):
        ddl = UNIVERSITY_DDL + """
        Derive compensation on instructor as salary + bonus;
        View earners of instructor where compensation > 0;
        """
        db = Database(ddl, constraint_mode="off")
        db.execute('Insert instructor(soc-sec-no := 1, employee-nbr := 1001,'
                   ' salary := 10, bonus := 5)')
        db.save(path)
        reopened = Database.open(path)
        assert reopened.query("From earners Retrieve compensation"
                              ).scalar() == 15

    def test_constraints_still_enforced_after_open(self, path):
        from repro import ConstraintViolation
        db = Database(UNIVERSITY_DDL, constraint_mode="immediate")
        db.execute('Insert course(course-no := 1, title := "Full",'
                   ' credits := 12)')
        db.save(path)
        reopened = Database.open(path)
        with pytest.raises(ConstraintViolation):
            reopened.execute('Insert student(soc-sec-no := 1)')
        reopened.execute('Insert student(soc-sec-no := 1,'
                         ' courses-enrolled := course with'
                         ' (title = "Full"))')

    def test_design_choices_survive(self, path):
        from repro import EvaMapping
        schema = parse_ddl(UNIVERSITY_DDL)
        design = PhysicalDesign(schema, block_size=512, pool_capacity=16)
        design.override_eva("student", "courses-enrolled",
                            EvaMapping.POINTER)
        db = Database(schema, design=design.finalize(),
                      constraint_mode="off")
        db.save(path)
        reopened = Database.open(path)
        assert reopened.design.block_size == 512
        enrolled = reopened.schema.get_class("student").attribute(
            "courses-enrolled")
        assert reopened.design.eva_mapping(enrolled) is EvaMapping.POINTER

    def test_surrogates_continue_after_open(self, path):
        db = Database(UNIVERSITY_DDL, constraint_mode="off")
        with db.transaction():
            db.execute('Insert person(name := "A", soc-sec-no := 1)')
        db.save(path)
        reopened = Database.open(path)
        with reopened.transaction():
            reopened.execute('Insert person(name := "B", soc-sec-no := 2)')
        surrogates = list(reopened.store.scan_class("person"))
        assert len(surrogates) == len(set(surrogates)) == 2

    def test_uncommitted_work_not_saved(self, path):
        db = Database(UNIVERSITY_DDL, constraint_mode="off")
        with db.transaction():
            db.execute('Insert person(name := "Kept", soc-sec-no := 1)')
        db.begin()
        db.execute('Insert person(name := "Open", soc-sec-no := 2)')
        with pytest.raises(TransactionError):
            db.save(path)
        db.abort()
        db.save(path)
        reopened = Database.open(path)
        assert reopened.query("From person Retrieve name").rows == \
            [("Kept",)]


class TestFileFormat:
    def test_magic_validated(self, tmp_path):
        bogus = tmp_path / "not-a-db"
        bogus.write_bytes(b"something else entirely")
        with pytest.raises(SimError, match="not a SIM database"):
            Database.open(str(bogus))

    def test_version_validated(self, tmp_path, path):
        import pickle
        from repro.persistence import MAGIC
        stale = tmp_path / "old.simdb"
        with open(stale, "wb") as handle:
            handle.write(MAGIC)
            pickle.dump({"version": 999}, handle)
        with pytest.raises(SimError, match="version"):
            Database.open(str(stale))

    def test_file_exists_on_disk(self, path):
        db = Database(UNIVERSITY_DDL, constraint_mode="off")
        db.save(path)
        assert os.path.getsize(path) > len(b"SIMREPRO")
