"""Mapper tests: LUC translation, physical design, and the runtime store."""

import pytest

from repro.errors import IntegrityError, SchemaError, UniquenessViolation
from repro.mapper import (
    EvaMapping,
    HierarchyMapping,
    MapperStore,
    MvDvaMapping,
    PhysicalDesign,
    translate_schema,
)
from repro.types.tvl import NULL, is_null


@pytest.fixture()
def store(university_schema):
    return MapperStore(university_schema)


class TestTranslation:
    def test_luc_per_class(self, university_schema):
        luc_schema = translate_schema(university_schema)
        names = {luc.name for luc in luc_schema.lucs() if luc.kind == "class"}
        assert names == {"person", "student", "instructor",
                         "teaching-assistant", "course", "department"}

    def test_class_luc_fields_are_immediate_single_valued(self,
                                                          university_schema):
        luc_schema = translate_schema(university_schema)
        student = luc_schema.luc("student")
        assert set(student.fields) == {"surrogate", "student-nbr"}

    def test_subclass_links(self, university_schema):
        luc_schema = translate_schema(university_schema)
        links = luc_schema.relationships("subclass")
        pairs = {(l.domain_luc, l.range_luc) for l in links}
        assert ("person", "student") in pairs
        assert ("student", "teaching-assistant") in pairs
        assert ("instructor", "teaching-assistant") in pairs
        assert all(l.multiplicity == "1:1" for l in links)

    def test_eva_relationships_one_per_pair(self, university_schema):
        luc_schema = translate_schema(university_schema)
        evas = luc_schema.relationships("eva")
        assert len(evas) == 8  # matches schema statistics

    def test_eva_lookup_from_either_side(self, university_schema):
        luc_schema = translate_schema(university_schema)
        via_advisor = luc_schema.eva_relationship_for("student", "advisor")
        via_advisees = luc_schema.eva_relationship_for("instructor",
                                                       "advisees")
        assert via_advisor is via_advisees


class TestPhysicalDesignDefaults:
    def test_one_to_one_maps_foreign_key(self, university_schema):
        design = PhysicalDesign(university_schema).finalize()
        spouse = university_schema.get_class("person").attribute("spouse")
        assert design.eva_mapping(spouse) is EvaMapping.FOREIGN_KEY

    def test_many_to_one_maps_common(self, university_schema):
        design = PhysicalDesign(university_schema).finalize()
        advisor = university_schema.get_class("student").attribute("advisor")
        assert design.eva_mapping(advisor) is EvaMapping.COMMON

    def test_distinct_many_many_maps_dedicated(self, university_schema):
        design = PhysicalDesign(university_schema).finalize()
        enrolled = university_schema.get_class("student").attribute(
            "courses-enrolled")
        assert design.eva_mapping(enrolled) is EvaMapping.DEDICATED

    def test_bounded_mv_dva_maps_array(self, university_schema):
        design = PhysicalDesign(university_schema).finalize()
        # no bounded MV DVA in the schema; check the rule via overrides API
        profession = university_schema.get_class("person").attribute(
            "profession")
        assert design.mv_dva_mapping(profession) is MvDvaMapping.SEPARATE_UNIT

    def test_multi_inheritance_class_gets_own_unit(self, university_schema):
        design = PhysicalDesign(university_schema).finalize()
        assert design.class_in_shared_unit("student")
        assert design.class_in_shared_unit("person")
        assert not design.class_in_shared_unit("teaching-assistant")

    def test_override_validation(self, university_schema):
        design = PhysicalDesign(university_schema)
        with pytest.raises(SchemaError):
            design.override_hierarchy("student",
                                      HierarchyMapping.SEPARATE_UNITS)
        with pytest.raises(SchemaError):
            design.override_eva("person", "name", EvaMapping.COMMON)
        design.finalize()
        with pytest.raises(SchemaError):
            design.override_hierarchy("person",
                                      HierarchyMapping.SEPARATE_UNITS)

    def test_describe_mentions_every_eva_pair(self, university_schema):
        design = PhysicalDesign(university_schema).finalize()
        text = design.describe()
        assert "common" in text and "foreign-key" in text


class TestRoles:
    def test_insert_entity_creates_role_chain(self, store):
        surrogate = store.insert_entity("teaching-assistant", {
            "name": "TA", "soc-sec-no": 1, "employee-nbr": 1001,
            "teaching-load": 5})
        assert store.roles_of(surrogate, "person") == [
            "person", "student", "instructor", "teaching-assistant"]

    def test_add_role_requires_superclass(self, store):
        surrogate = store.new_surrogate()
        with pytest.raises(IntegrityError):
            store.add_role(surrogate, "student")

    def test_duplicate_role_rejected(self, store):
        surrogate = store.insert_entity("person", {"soc-sec-no": 1})
        with pytest.raises(IntegrityError):
            store.add_role(surrogate, "person")

    def test_remove_role_cascades_to_subclasses(self, store):
        surrogate = store.insert_entity("teaching-assistant", {
            "soc-sec-no": 1, "employee-nbr": 1001})
        store.remove_role(surrogate, "student")
        assert store.roles_of(surrogate, "person") == ["person", "instructor"]

    def test_remove_role_drops_eva_instances(self, store, university_schema):
        advisor = university_schema.get_class("student").attribute("advisor")
        s = store.insert_entity("student", {"soc-sec-no": 1})
        i = store.insert_entity("instructor", {"soc-sec-no": 2,
                                               "employee-nbr": 1001})
        store.eva_include(s, advisor, i)
        store.remove_role(i, "instructor")
        assert store.eva_targets(s, advisor) == []

    def test_subrole_reads(self, store, university_schema):
        profession = university_schema.get_class("person").attribute(
            "profession")
        s = store.insert_entity("student", {"soc-sec-no": 1})
        assert store.read_dva(s, profession) == ["student"]
        store.add_role(s, "instructor", {"employee-nbr": 1001})
        assert store.read_dva(s, profession) == ["student", "instructor"]


class TestDvas:
    def test_read_write_single_valued(self, store, university_schema):
        name = university_schema.get_class("person").attribute("name")
        s = store.insert_entity("person", {"soc-sec-no": 1, "name": "A"})
        assert store.read_dva(s, name) == "A"
        store.write_dva(s, name, "B")
        assert store.read_dva(s, name) == "B"

    def test_unset_field_is_null(self, store, university_schema):
        birthdate = university_schema.get_class("person").attribute(
            "birthdate")
        s = store.insert_entity("person", {"soc-sec-no": 1})
        assert is_null(store.read_dva(s, birthdate))

    def test_unique_enforced_on_insert(self, store):
        store.insert_entity("person", {"soc-sec-no": 1})
        with pytest.raises(UniquenessViolation):
            store.insert_entity("person", {"soc-sec-no": 1})

    def test_unique_enforced_on_write(self, store, university_schema):
        ssn = university_schema.get_class("person").attribute("soc-sec-no")
        store.insert_entity("person", {"soc-sec-no": 1})
        other = store.insert_entity("person", {"soc-sec-no": 2})
        with pytest.raises(UniquenessViolation):
            store.write_dva(other, ssn, 1)

    def test_unique_allows_rewrite_of_same_value(self, store,
                                                 university_schema):
        ssn = university_schema.get_class("person").attribute("soc-sec-no")
        s = store.insert_entity("person", {"soc-sec-no": 1})
        store.write_dva(s, ssn, 1)
        assert store.read_dva(s, ssn) == 1

    def test_system_attributes_read_only(self, store, university_schema):
        profession = university_schema.get_class("person").attribute(
            "profession")
        s = store.insert_entity("person", {"soc-sec-no": 1})
        with pytest.raises(IntegrityError):
            store.write_dva(s, profession, ["student"])

    def test_find_by_dva_uses_index_and_restricts_class(self, store,
                                                        university_schema):
        s1 = store.insert_entity("student", {"soc-sec-no": 1})
        store.insert_entity("person", {"soc-sec-no": 2})
        assert store.find_by_dva("student", "soc-sec-no", 1) == [s1]
        assert store.find_by_dva("student", "soc-sec-no", 2) == []
        assert store.find_by_dva("person", "soc-sec-no", 2) != []


class TestEvas:
    def test_include_and_traverse_both_directions(self, store,
                                                  university_schema):
        enrolled = university_schema.get_class("student").attribute(
            "courses-enrolled")
        s = store.insert_entity("student", {"soc-sec-no": 1})
        c = store.insert_entity("course", {"course-no": 1, "title": "T",
                                           "credits": 3})
        store.eva_include(s, enrolled, c)
        assert store.eva_targets(s, enrolled) == [c]
        assert store.eva_targets(c, enrolled.inverse) == [s]

    def test_include_from_inverse_side(self, store, university_schema):
        enrolled = university_schema.get_class("student").attribute(
            "courses-enrolled")
        s = store.insert_entity("student", {"soc-sec-no": 1})
        c = store.insert_entity("course", {"course-no": 1, "title": "T",
                                           "credits": 3})
        store.eva_include(c, enrolled.inverse, s)
        assert store.eva_targets(s, enrolled) == [c]

    def test_exclude(self, store, university_schema):
        enrolled = university_schema.get_class("student").attribute(
            "courses-enrolled")
        s = store.insert_entity("student", {"soc-sec-no": 1})
        c = store.insert_entity("course", {"course-no": 1, "title": "T",
                                           "credits": 3})
        store.eva_include(s, enrolled, c)
        assert store.eva_exclude(s, enrolled, c)
        assert not store.eva_exclude(s, enrolled, c)
        assert store.eva_targets(c, enrolled.inverse) == []

    def test_member_roles_validated(self, store, university_schema):
        enrolled = university_schema.get_class("student").attribute(
            "courses-enrolled")
        p = store.insert_entity("person", {"soc-sec-no": 1})
        c = store.insert_entity("course", {"course-no": 1, "title": "T",
                                           "credits": 3})
        with pytest.raises(IntegrityError):
            store.eva_include(p, enrolled, c)  # p is not a student

    def test_reflexive_spouse(self, store, university_schema):
        spouse = university_schema.get_class("person").attribute("spouse")
        a = store.insert_entity("person", {"soc-sec-no": 1})
        b = store.insert_entity("person", {"soc-sec-no": 2})
        store.eva_include(a, spouse, b)
        assert store.eva_targets(a, spouse) == [b]
        assert store.eva_targets(b, spouse) == [a]
        store.eva_exclude(b, spouse, a)  # exclude from the other side
        assert store.eva_targets(a, spouse) == []


@pytest.mark.parametrize("mapping", [
    EvaMapping.COMMON, EvaMapping.DEDICATED, EvaMapping.CLUSTERED,
    EvaMapping.POINTER])
def test_all_eva_mappings_behave_identically(university_schema, mapping):
    """The Mapper 'assumes the responsibility of traversing a relationship,
    no matter how it is physically mapped' (§5.1)."""
    design = PhysicalDesign(university_schema)
    design.override_eva("student", "advisor", mapping)
    design.finalize()
    store = MapperStore(university_schema, design)
    advisor = university_schema.get_class("student").attribute("advisor")

    i = store.insert_entity("instructor", {"soc-sec-no": 1,
                                           "employee-nbr": 1001})
    students = [store.insert_entity("student", {"soc-sec-no": 2 + k})
                for k in range(3)]
    for s in students:
        store.eva_include(s, advisor, i)
    assert sorted(store.eva_targets(i, advisor.inverse)) == sorted(students)
    for s in students:
        assert store.eva_targets(s, advisor) == [i]
    store.eva_exclude(students[0], advisor, i)
    assert sorted(store.eva_targets(i, advisor.inverse)) == \
        sorted(students[1:])


def test_foreign_key_mapping_single_valued_side(university_schema):
    design = PhysicalDesign(university_schema)
    design.override_eva("student", "advisor", EvaMapping.FOREIGN_KEY)
    design.finalize()
    store = MapperStore(university_schema, design)
    advisor = university_schema.get_class("student").attribute("advisor")
    i = store.insert_entity("instructor", {"soc-sec-no": 1,
                                           "employee-nbr": 1001})
    s = store.insert_entity("student", {"soc-sec-no": 2})
    store.eva_include(s, advisor, i)
    assert store.eva_targets(s, advisor) == [i]
    assert store.eva_targets(i, advisor.inverse) == [s]
    # A second include on the single-valued FK side must be rejected.
    i2 = store.insert_entity("instructor", {"soc-sec-no": 3,
                                            "employee-nbr": 1002})
    with pytest.raises(IntegrityError):
        store.eva_include(s, advisor, i2)


def test_separate_units_hierarchy(university_schema):
    design = PhysicalDesign(
        university_schema,
        default_hierarchy=HierarchyMapping.SEPARATE_UNITS).finalize()
    store = MapperStore(university_schema, design)
    s = store.insert_entity("student", {"soc-sec-no": 1, "name": "A"})
    name = university_schema.get_class("person").attribute("name")
    assert store.read_dva(s, name) == "A"
    # person and student live in different files
    assert store.class_file("person") is not store.class_file("student")


def test_variable_format_hierarchy_shares_unit(university_schema):
    store = MapperStore(university_schema)
    assert store.class_file("person") is store.class_file("student")
    assert store.class_file("person") is store.class_file("instructor")
    assert store.class_file("person") is not store.class_file(
        "teaching-assistant")


def test_undo_via_transactions(university_schema):
    store = MapperStore(university_schema)
    advisor = university_schema.get_class("student").attribute("advisor")
    i = store.insert_entity("instructor", {"soc-sec-no": 1,
                                           "employee-nbr": 1001})
    store.transactions.begin()
    s = store.insert_entity("student", {"soc-sec-no": 2})
    store.eva_include(s, advisor, i)
    store.transactions.abort()
    assert not store.has_role(s, "student")
    assert store.eva_targets(i, advisor.inverse) == []


class TestCursors:
    """The paper's §5.1 cursor interface: LUC and relationship cursors."""

    def test_luc_cursor_delivers_flat_records(self, store):
        store.insert_entity("course", {"course-no": 1, "title": "A",
                                       "credits": 3})
        store.insert_entity("course", {"course-no": 2, "title": "B",
                                       "credits": 4})
        from repro.mapper import open_luc_cursor
        cursor = open_luc_cursor(store, "course")
        first = cursor.fetch()
        assert first["title"] == "A" and "surrogate" in first
        assert cursor.fetch()["title"] == "B"
        assert cursor.fetch() is None

    def test_relationship_cursor_hides_mapping(self, university_schema):
        from repro.mapper import (EvaMapping, MapperStore, PhysicalDesign,
                                  open_relationship_cursor)
        for mapping in (EvaMapping.COMMON, EvaMapping.POINTER):
            design = PhysicalDesign(university_schema)
            design.override_eva("student", "courses-enrolled", mapping)
            store = MapperStore(university_schema, design.finalize())
            student = store.insert_entity("student", {"soc-sec-no": 1})
            enrolled = university_schema.get_class("student").attribute(
                "courses-enrolled")
            for number in (1, 2):
                course = store.insert_entity(
                    "course", {"course-no": number,
                               "title": f"C{number}", "credits": 1})
                store.eva_include(student, enrolled, course)
            cursor = open_relationship_cursor(store, student, "student",
                                              "courses-enrolled")
            titles = [record["title"] for record in cursor]
            assert titles == ["C1", "C2"]

    def test_cursor_close(self, store):
        from repro.mapper import open_luc_cursor
        from repro.errors import SimError
        cursor = open_luc_cursor(store, "person")
        cursor.close()
        with pytest.raises(SimError):
            cursor.fetch()

    def test_cursor_context_manager(self, store):
        from repro.mapper import LUCCursor
        store.insert_entity("person", {"soc-sec-no": 5})
        with LUCCursor(store, "person") as cursor:
            assert cursor.fetch()["soc-sec-no"] == 5
        assert cursor.closed
