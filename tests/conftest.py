"""Shared fixtures: the UNIVERSITY schema and populated databases."""

from __future__ import annotations

import pytest

from repro import Database, parse_ddl
from repro.workloads import UNIVERSITY_DDL, build_university


@pytest.fixture(scope="session", autouse=True)
def _lockdep_clean_report():
    """Lockdep runs by default under pytest; the whole suite must end
    with zero recorded lock-order violations.  (tests/test_lockdep.py
    provokes violations on purpose — it resets the recorder around each
    of its tests, so anything left here is a real engine bug.)"""
    yield
    from repro.engine import lockdep
    leftover = lockdep.violations()
    assert leftover == [], (
        f"lock-order violations recorded during the test run: {leftover}")


@pytest.fixture(scope="session")
def university_schema():
    return parse_ddl(UNIVERSITY_DDL)


@pytest.fixture()
def empty_university():
    """A fresh, empty UNIVERSITY database (constraints off)."""
    return Database(UNIVERSITY_DDL, constraint_mode="off")


@pytest.fixture(scope="module")
def university():
    """A populated UNIVERSITY database, shared read-only per module."""
    return build_university(departments=4, instructors=10, students=40,
                            courses=20, seed=7)


@pytest.fixture()
def small_university():
    """A small hand-built database used by the paper-example tests."""
    db = Database(UNIVERSITY_DDL, constraint_mode="off")
    db.execute('Insert department(dept-nbr := 100, name := "Physics")')
    db.execute('Insert department(dept-nbr := 200, name := "Math")')
    db.execute('Insert instructor(name := "Joe Bloke", soc-sec-no := 111223333,'
               ' employee-nbr := 1729, salary := 50000, birthdate := "1945-03-02",'
               ' assigned-department := department with (name = "Physics"))')
    db.execute('Insert instructor(name := "Jane Roe", soc-sec-no := 222334444,'
               ' employee-nbr := 1730, salary := 60000, bonus := 5000,'
               ' birthdate := "1950-01-01",'
               ' assigned-department := department with (name = "Math"))')
    db.execute('Insert course(course-no := 101, title := "Algebra I", credits := 3)')
    db.execute('Insert course(course-no := 102, title := "Calculus I", credits := 4)')
    db.execute('Insert course(course-no := 201, title := "Quantum Chromodynamics",'
               ' credits := 5)')
    db.execute('Modify course(prerequisites := include course with'
               ' (title = "Algebra I")) Where title = "Calculus I"')
    db.execute('Modify course(prerequisites := include course with'
               ' (title = "Calculus I")) Where title = "Quantum Chromodynamics"')
    db.execute('Insert student(name := "John Doe", soc-sec-no := 456887766,'
               ' student-nbr := 2001, birthdate := "1940-05-05",'
               ' courses-enrolled := course with (title = "Algebra I"),'
               ' major-department := department with (name = "Physics"),'
               ' advisor := instructor with (name = "Joe Bloke"))')
    db.execute('Insert student(name := "Lone Wolf", soc-sec-no := 999887766,'
               ' student-nbr := 2002)')
    return db
