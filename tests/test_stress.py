"""Moderate-scale soak test: a larger university under a mixed workload.

Scaled to stay inside CI budgets while still exercising block overflow,
buffer eviction, index growth, constraint churn and recovery at a size
where bookkeeping bugs (free-space accounting, stale RIDs, index leaks)
actually surface.
"""

import pytest

from repro import Database, PhysicalDesign, parse_ddl
from repro.workloads import UNIVERSITY_DDL, build_university


@pytest.fixture(scope="module")
def big():
    schema = parse_ddl(UNIVERSITY_DDL)
    design = PhysicalDesign(schema, pool_capacity=32)  # force eviction
    db = Database(schema, design=design.finalize(), constraint_mode="off")
    from repro.workloads import populate_university
    populate_university(db, departments=6, instructors=25, students=250,
                        courses=60, seed=99)
    return db


class TestScale:
    def test_population_counts(self, big):
        assert big.store.class_count("student") == 250
        assert big.store.class_count("course") == 60

    def test_full_scan_query(self, big):
        rows = big.query("From student Retrieve name,"
                         " count(courses-enrolled) of student").rows
        assert len(rows) == 250
        assert all(count >= 1 for _, count in rows)

    def test_selective_index_query(self, big):
        ssn = big.query("From student Retrieve soc-sec-no").rows[200][0]
        assert len(big.query(
            f"From student Retrieve name Where soc-sec-no = {ssn}")) == 1

    def test_three_hop_navigation(self, big):
        rows = big.query(
            "From department Retrieve name,"
            " count(students-enrolled of courses-taught of"
            " instructors-employed) of department").rows
        assert len(rows) == 6

    def test_bulk_update_and_rollback(self, big):
        before = big.query("From course Retrieve Table Distinct"
                           " sum(credits of course)").scalar()
        big.begin()
        count = big.execute("Modify course(credits := 1)")
        assert count == 60
        big.abort()
        after = big.query("From course Retrieve Table Distinct"
                          " sum(credits of course)").scalar()
        assert after == before

    def test_mass_delete_keeps_integrity(self, big):
        big.begin()
        deleted = big.execute("Delete student Where student-nbr >= 2200")
        assert deleted > 0
        # No dangling enrolment may survive the cascade.
        for course_count in big.query(
                "From course Retrieve count(students-enrolled) of"
                " course").column(0):
            assert course_count >= 0
        remaining = big.query(
            "From student Retrieve count(courses-enrolled) of"
            " student").column(0)
        assert all(count >= 1 for count in remaining)
        big.abort()
        assert big.store.class_count("student") == 250

    def test_crash_recovery_at_scale(self, big):
        fingerprint_query = ("From instructor Retrieve employee-nbr,"
                             " count(advisees) of instructor"
                             " Order By employee-nbr")
        before = big.query(fingerprint_query).rows
        big.store.pool.flush()
        statistics = big.simulate_crash()
        assert big.query(fingerprint_query).rows == before
        # Earlier tests aborted transactions; their updates are log losers
        # and get (idempotently) undone — the state equality above is the
        # real invariant.
        assert statistics["undone_slots"] >= 0

    def test_buffer_pressure_accounting(self, big):
        big.cold_cache()
        big.reset_io_stats()
        big.query("From student Retrieve name")
        stats = big.io_stats
        assert stats.physical_reads > 0
        assert stats.logical_reads >= stats.physical_reads
