"""Read-path cache correctness: strict invalidation everywhere.

The decoded-record / role / EVA fan-out caches (``repro.mapper.read_cache``)
and the engine's epoch-validated memoization (``repro.engine.access``) must
never serve a stale value: every mutation path — direct, transactional,
statement-level rollback, full abort, and crash recovery — has to drop the
affected entries.  Each test warms the caches with a query *before*
mutating, so a missed invalidation would surface as a wrong answer.
"""

import pytest

from repro import Database
from repro.errors import SimError
from repro.types.tvl import NULL
from repro.mapper.read_cache import MISSING, ReadCache
from repro.perf import PerfCounters
from repro.workloads import UNIVERSITY_DDL


@pytest.fixture()
def db():
    database = Database(UNIVERSITY_DDL, constraint_mode="off")
    database.execute('Insert department(dept-nbr := 100, name := "Physics")')
    database.execute('Insert department(dept-nbr := 200, name := "Math")')
    database.execute(
        'Insert instructor(name := "Joe Bloke", soc-sec-no := 111223333,'
        ' employee-nbr := 1729, salary := 50000,'
        ' assigned-department := department with (name = "Physics"))')
    database.execute(
        'Insert student(name := "John Doe", soc-sec-no := 456887766,'
        ' student-nbr := 2001,'
        ' advisor := instructor with (name = "Joe Bloke"),'
        ' major-department := department with (name = "Physics"))')
    database.execute('Insert course(course-no := 101, title := "Algebra I",'
                     ' credits := 3)')
    return database


def names(db):
    return db.query("From student Retrieve name, name of advisor,"
                    " name of major-department").rows


# ---------------------------------------------------------------- unit level


class TestReadCacheUnit:
    def test_record_lru_eviction(self):
        cache = ReadCache(PerfCounters(), record_capacity=2)
        cache.put_record("a", 1, "rid1", {"x": 1})
        cache.put_record("a", 2, "rid2", {"x": 2})
        cache.put_record("a", 3, "rid3", {"x": 3})
        assert cache.get_record("a", 1) is None          # evicted
        assert cache.get_record("a", 3) == ("rid3", {"x": 3})

    def test_lru_recency_updated_on_hit(self):
        cache = ReadCache(PerfCounters(), record_capacity=2)
        cache.put_record("a", 1, "rid1", {})
        cache.put_record("a", 2, "rid2", {})
        cache.get_record("a", 1)                         # 1 is now recent
        cache.put_record("a", 3, "rid3", {})
        assert cache.get_record("a", 2) is None          # 2 was the LRU
        assert cache.get_record("a", 1) is not None

    def test_role_negative_caching(self):
        cache = ReadCache(PerfCounters())
        assert cache.get_role("a", 1) is MISSING
        cache.put_role("a", 1, None)
        assert cache.get_role("a", 1) is None            # cached negative
        cache.invalidate_role("a", 1)
        assert cache.get_role("a", 1) is MISSING

    def test_invalidate_role_drops_record_too(self):
        cache = ReadCache(PerfCounters())
        cache.put_record("a", 1, "rid", {})
        cache.invalidate_role("a", 1)
        assert cache.get_record("a", 1) is None

    def test_invalidate_eva_drops_both_sides_of_each_endpoint(self):
        cache = ReadCache(PerfCounters())
        for side in (True, False):
            cache.put_fanout(7, side, 1, (2,))
            cache.put_fanout(7, side, 2, (1,))
        cache.invalidate_eva(7, 1, 2)
        for side in (True, False):
            assert cache.get_fanout(7, side, 1) is None
            assert cache.get_fanout(7, side, 2) is None

    def test_every_invalidation_bumps_epoch(self):
        cache = ReadCache(PerfCounters())
        epochs = [cache.epoch]
        cache.invalidate_record("a", 1)
        epochs.append(cache.epoch)
        cache.invalidate_role("a", 1)
        epochs.append(cache.epoch)
        cache.invalidate_eva(7, 1)
        epochs.append(cache.epoch)
        cache.note_write()
        epochs.append(cache.epoch)
        cache.clear()
        epochs.append(cache.epoch)
        assert epochs == sorted(epochs) and len(set(epochs)) == len(epochs)

    def test_disabled_cache_stores_nothing(self):
        cache = ReadCache(PerfCounters())
        cache.enabled = False
        cache.put_record("a", 1, "rid", {})
        cache.put_role("a", 1, None)
        cache.put_fanout(7, True, 1, (2,))
        assert cache.get_record("a", 1) is None
        assert cache.get_role("a", 1) is MISSING
        assert cache.get_fanout(7, True, 1) is None


# ----------------------------------------------------- auto-commit mutations


class TestInvalidationOutsideTransactions:
    def test_modify_dva_then_requery(self, db):
        assert names(db) == [("John Doe", "Joe Bloke", "Physics")]
        db.execute('Modify student(name := "Jack Doe")'
                   ' Where soc-sec-no = 456887766')
        assert names(db) == [("Jack Doe", "Joe Bloke", "Physics")]

    def test_modify_target_of_shared_path_then_requery(self, db):
        assert names(db)[0][1] == "Joe Bloke"
        db.execute('Modify instructor(name := "J. Bloke, PhD")'
                   ' Where employee-nbr = 1729')
        assert names(db)[0][1] == "J. Bloke, PhD"

    def test_delete_then_requery(self, db):
        assert len(names(db)) == 1
        db.execute('Delete student Where soc-sec-no = 456887766')
        assert names(db) == []
        # The person role survives the subclass delete and stays readable.
        assert db.query('From person Retrieve name'
                        ' Where soc-sec-no = 456887766').rows \
            == [("John Doe",)]

    def test_eva_include_then_requery(self, db):
        # Empty TYPE 3 domains yield the dummy all-null row (§4.5).
        enrolled = ("From student Retrieve title of courses-enrolled")
        assert db.query(enrolled).rows == [(NULL,)]
        db.execute('Modify student(courses-enrolled := include course with'
                   ' (course-no = 101)) Where soc-sec-no = 456887766')
        assert db.query(enrolled).rows == [("Algebra I",)]

    def test_eva_exclude_then_requery(self, db):
        db.execute('Modify student(courses-enrolled := include course with'
                   ' (course-no = 101)) Where soc-sec-no = 456887766')
        # Warm the fan-out cache in both directions.
        assert db.query("From student Retrieve title of"
                        " courses-enrolled").rows == [("Algebra I",)]
        assert db.query("From course Retrieve name of students-enrolled"
                        " Where course-no = 101").rows == [("John Doe",)]
        db.execute('Modify student(courses-enrolled := exclude course with'
                   ' (course-no = 101)) Where soc-sec-no = 456887766')
        assert db.query("From student Retrieve title of"
                        " courses-enrolled").rows == [(NULL,)]
        assert db.query("From course Retrieve name of students-enrolled"
                        " Where course-no = 101").rows == [(NULL,)]

    def test_single_valued_eva_reassignment(self, db):
        db.execute(
            'Insert instructor(name := "Jane Roe", soc-sec-no := 222334444,'
            ' employee-nbr := 1730,'
            ' assigned-department := department with (name = "Math"))')
        assert names(db)[0][1] == "Joe Bloke"
        db.execute('Modify student(advisor := instructor with'
                   ' (employee-nbr = 1730)) Where soc-sec-no = 456887766')
        assert names(db)[0][1] == "Jane Roe"
        # The inverse direction must not serve the old fan-out either.
        assert db.query('From instructor Retrieve name of advisees'
                        ' Where employee-nbr = 1729').rows == [(NULL,)]

    def test_mapper_level_role_mutations(self, db):
        surrogate = db.store.find_by_dva("student", "soc-sec-no",
                                         456887766)[0]
        query = ("From person Retrieve profession"
                 " Where soc-sec-no = 456887766")
        assert db.query(query).rows == [("student",)]
        db.store.add_role(surrogate, "instructor",
                          {"employee-nbr": 1999})
        assert sorted(db.query(query).rows) \
            == [("instructor",), ("student",)]
        db.store.remove_role(surrogate, "instructor")
        assert db.query(query).rows == [("student",)]

    def test_insert_after_negative_role_check(self, db):
        # A query over an empty subclass caches negative role entries;
        # Insert From must invalidate them before the next query.
        assert db.query("From teaching-assistant Retrieve name").rows == []
        db.execute('Insert teaching-assistant From student'
                   ' Where soc-sec-no = 456887766'
                   ' (employee-nbr := 2000, teaching-load := 2)')
        assert db.query("From teaching-assistant Retrieve name").rows \
            == [("John Doe",)]


# ------------------------------------------------------------- transactions


class TestInvalidationInTransactions:
    def test_read_your_writes_inside_transaction(self, db):
        assert names(db)[0][0] == "John Doe"
        db.begin()
        db.execute('Modify student(name := "Jack Doe")'
                   ' Where soc-sec-no = 456887766')
        assert names(db)[0][0] == "Jack Doe"
        db.commit()
        assert names(db)[0][0] == "Jack Doe"

    def test_abort_restores_dva(self, db):
        assert names(db)[0][0] == "John Doe"
        db.begin()
        db.execute('Modify student(name := "Jack Doe")'
                   ' Where soc-sec-no = 456887766')
        assert names(db)[0][0] == "Jack Doe"
        db.abort()
        assert names(db)[0][0] == "John Doe"

    def test_abort_restores_eva(self, db):
        enrolled = "From student Retrieve title of courses-enrolled"
        db.begin()
        db.execute('Modify student(courses-enrolled := include course with'
                   ' (course-no = 101)) Where soc-sec-no = 456887766')
        assert db.query(enrolled).rows == [("Algebra I",)]
        db.abort()
        assert db.query(enrolled).rows == [(NULL,)]

    def test_abort_restores_delete(self, db):
        db.begin()
        db.execute('Delete student Where soc-sec-no = 456887766')
        assert names(db) == []
        db.abort()
        assert names(db) == [("John Doe", "Joe Bloke", "Physics")]

    def test_failed_statement_leaves_no_stale_values(self, db):
        db.execute('Insert student(name := "Jane Roe",'
                   ' soc-sec-no := 456887767, student-nbr := 2002)')
        before = sorted(db.query("From student Retrieve name,"
                                 " soc-sec-no").rows)
        # Uniqueness violation aborts the statement mid-flight after some
        # records may have been touched.
        with pytest.raises(SimError):
            db.execute('Modify student(soc-sec-no := 456887766)'
                       ' Where name = "Jane Roe"')
        assert sorted(db.query("From student Retrieve name,"
                               " soc-sec-no").rows) == before


# ----------------------------------------------------------- crash recovery


class TestCrashRecovery:
    def test_inflight_modify_undone_with_caches(self, db):
        assert names(db)[0][0] == "John Doe"      # warm every cache layer
        db.begin()
        db.execute('Modify student(name := "Lost Update")'
                   ' Where soc-sec-no = 456887766')
        assert names(db)[0][0] == "Lost Update"
        db.store.pool.flush()                     # steal: dirty pages out
        db.simulate_crash()
        assert names(db)[0][0] == "John Doe"

    def test_committed_state_survives_with_caches(self, db):
        with db.transaction():
            db.execute('Modify student(name := "Jack Doe")'
                       ' Where soc-sec-no = 456887766')
        assert names(db)[0][0] == "Jack Doe"
        db.simulate_crash()
        assert names(db)[0][0] == "Jack Doe"
        # Post-recovery mutations keep invalidating the rebuilt state.
        db.begin()
        db.execute('Modify student(name := "Gone Again")'
                   ' Where soc-sec-no = 456887766')
        db.abort()
        assert names(db)[0][0] == "Jack Doe"


# ------------------------------------------------------------ perf counters


class TestPerfAccounting:
    def test_second_query_reports_cache_hits(self, db):
        first = db.query("From student Retrieve name, name of advisor")
        second = db.query("From student Retrieve name, name of advisor")
        assert second.perf is not None
        assert second.perf.overall_hit_rate() > 0.0
        assert second.perf.records_decoded <= first.perf.records_decoded

    def test_statistics_expose_read_path_counters(self, db):
        db.query("From student Retrieve name")
        stats = db.statistics()
        assert "read_path" in stats
        assert stats["read_path"]["records_decoded"] > 0


# ----------------------------------------------- update-path index selection


class TestSelectionIndexPath:
    def test_equality_on_indexed_dva_uses_index(self, db):
        before = db.perf.index_selections
        db.execute('Modify student(name := "Jack Doe")'
                   ' Where soc-sec-no = 456887766')
        assert db.perf.index_selections == before + 1
        assert names(db)[0][0] == "Jack Doe"

    def test_or_predicate_falls_back_to_scan(self, db):
        before = db.perf.index_selections
        db.execute('Modify student(name := "Jack Doe")'
                   ' Where soc-sec-no = 456887766 or student-nbr = 2001')
        assert db.perf.index_selections == before
        assert names(db)[0][0] == "Jack Doe"

    def test_unindexed_equality_falls_back_to_scan(self, db):
        before = db.perf.index_selections
        db.execute('Modify student(student-nbr := 2101)'
                   ' Where name = "John Doe"')
        assert db.perf.index_selections == before
        assert db.query("From student Retrieve student-nbr").rows \
            == [(2101,)]

    def test_index_and_scan_selections_agree(self, db):
        from repro import parse_dml
        db.execute('Insert student(name := "Jane Roe",'
                   ' soc-sec-no := 456887767, student-nbr := 2002)')
        statement = parse_dml('Delete student Where soc-sec-no = 456887766')
        selected = db.executor.select_entities("student", statement.where)
        ssn = db.schema.get_class("student").attribute("soc-sec-no")
        expected = [surrogate
                    for surrogate in db.store.scan_class("student")
                    if db.store.read_dva(surrogate, ssn) == 456887766]
        assert sorted(selected) == sorted(expected) and len(selected) == 1
