"""Statistical optimization tests (paper §5.1's unfinished roadmap item)."""

import pytest

from repro import Database, PhysicalDesign, parse_ddl, parse_dml
from repro.optimizer import CostModel, analyze
from repro.optimizer.statistics import AttributeStatistics
from repro.workloads import UNIVERSITY_DDL, populate_university


@pytest.fixture(scope="module")
def db():
    schema = parse_ddl(UNIVERSITY_DDL)
    design = (PhysicalDesign(schema)
              .add_value_index("student", "student-nbr")
              .finalize())
    database = Database(schema, design=design, constraint_mode="off")
    populate_university(database, students=80, instructors=10, courses=20,
                        seed=5)
    return database


class TestAnalyze:
    def test_cardinalities_collected(self, db):
        statistics = analyze(db.store)
        assert statistics.class_cardinality["student"] == 80
        assert statistics.class_cardinality["course"] == 20

    def test_attribute_distributions(self, db):
        statistics = analyze(db.store)
        credits = statistics.attribute("course", "credits")
        assert credits.row_count == 20
        assert 1 <= credits.distinct_count <= 4   # credits in 2..5
        assert credits.null_count == 0

    def test_null_fraction(self, db):
        statistics = analyze(db.store)
        bonus = statistics.attribute("instructor", "bonus")
        # TAs get bonus 0; regular instructors a value: no nulls here, but
        # spouse-less people have null birthdate? birthdate always set.
        name = statistics.attribute("person", "name")
        assert name.null_count == 0

    def test_eva_fanouts_both_directions(self, db):
        statistics = analyze(db.store)
        advisees = statistics.eva("instructor", "advisees")
        advisor = statistics.eva("student", "advisor")
        assert advisees is not None and advisor is not None
        assert advisees.instance_count == advisor.instance_count
        assert advisees.forward_fanout == pytest.approx(
            advisor.reverse_fanout)

    def test_equality_selectivity_from_distribution(self):
        stats = AttributeStatistics(row_count=100, null_count=0,
                                    distinct_count=25)
        assert stats.equality_selectivity() == pytest.approx(0.04)

    def test_most_common_value(self):
        stats = AttributeStatistics(row_count=100, null_count=0,
                                    distinct_count=25,
                                    top_value="popular", top_frequency=40)
        assert stats.equality_selectivity("popular") == pytest.approx(0.4)
        assert stats.equality_selectivity("rare") == pytest.approx(0.04)

    def test_range_selectivity_histogram(self):
        from repro.optimizer.statistics import _equi_depth
        values = sorted(range(100))
        stats = AttributeStatistics(row_count=100, null_count=0,
                                    distinct_count=100,
                                    boundaries=_equi_depth(values, 8))
        half = stats.range_selectivity(low=50)
        assert 0.3 < half < 0.8

    def test_empty_extent(self):
        db = Database("Class Empty ( x: integer );", constraint_mode="off")
        statistics = analyze(db.store)
        assert statistics.class_cardinality["empty"] == 0
        attr = statistics.attribute("empty", "x")
        assert attr.equality_selectivity() == 0.0


class TestOptimizerIntegration:
    def test_analyze_enables_value_index_choice(self, db):
        # student-nbr is NOT declared unique, but the collected statistics
        # show it is effectively unique: the index plan wins.
        nbr = db.query("From student Retrieve student-nbr").rows[10][0]
        text = f"From student Retrieve name Where student-nbr = {nbr}"

        db.optimizer.table_statistics = None
        query = parse_dml(text)
        tree = db.qualifier.resolve_retrieve(query)
        default_plan = db.optimizer.choose_plan(query, tree)

        db.analyze()
        analyzed_plan = db.optimizer.choose_plan(query, tree)
        assert analyzed_plan.root_access["student"].kind == "index"
        # With statistics the estimated rows shrink to ~1.
        assert analyzed_plan.root_access["student"].estimated_rows <= \
            (default_plan.root_access["student"].estimated_rows
             if default_plan.root_access["student"].kind == "index"
             else 80)

    def test_statistics_survive_on_cost_model(self, db):
        statistics = db.analyze()
        model = CostModel(db.store, statistics)
        with_stats = model.equality_selectivity("student", "student-nbr")
        without = CostModel(db.store).equality_selectivity(
            "student", "student-nbr")
        assert with_stats < without

    def test_iqf_analyze_command(self, db):
        from repro.interfaces import run_script
        transcript = run_script(db, ".analyze\n")
        assert "analyzed" in transcript
